"""Adversarial peer profiles, the quarantine defense, and surge workloads.

Covers the role-assignment machinery (:class:`PeerPopulation`), the
per-holder corruption draws and the reputation/quarantine path in the
failover loop, the surge generators, and the ``stress`` experiment —
plus the bit-identity guarantees: an absent (or empty, with corruption
off) :class:`AdversarialConfig` changes nothing, the new counters stay
zero on every pre-existing configuration, and adversarial sweeps stay
deterministic across worker counts and journal resume.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.adversarial import AdversarialConfig, PeerPopulation
from repro.core import (
    MassChurnSchedule,
    Organization,
    SimulationConfig,
    run_policy_sweep,
    simulate,
    simulate_stream,
)
from repro.security.protocols import SecurityOverheadModel
from repro.traces.record import Trace
from repro.traces.synthetic import (
    FlashCrowdSpec,
    inject_flash_crowd,
    mass_churn_schedule,
)
from repro.util.rng import derive_seed

from tests.conftest import assert_result_roundtrips

BAPS = Organization.BROWSERS_AWARE_PROXY


def _chain_trace(n_requesters: int = 3) -> Trace:
    """Clients 0..n-1 request doc0 in sequence: each requester probes
    the browsers that already hold it (the proxy holds nothing with
    ``proxy_capacity=0``) before falling back to the server."""
    n = n_requesters
    return Trace(
        timestamps=np.arange(n, dtype=float),
        clients=np.arange(n),
        docs=np.zeros(n, dtype=np.int64),
        sizes=np.full(n, 100),
        versions=np.zeros(n, dtype=np.int64),
        name="chain",
    )


def _chain_config(**overrides) -> SimulationConfig:
    return SimulationConfig(
        proxy_capacity=0, browser_capacity=10_000, **overrides
    )


# ---------------------------------------------------------------------------
# configuration validation


def test_adversarial_config_validates_fractions():
    with pytest.raises(ValueError, match="polluter-fraction"):
        AdversarialConfig(polluter_fraction=1.5)
    with pytest.raises(ValueError, match="polluter_corruption_rate"):
        AdversarialConfig(polluter_corruption_rate=-0.1)
    with pytest.raises(ValueError, match="one profile"):
        AdversarialConfig(
            polluter_fraction=0.6,
            flapper_fraction=0.6,
            flap_schedule=MassChurnSchedule(windows=((0.0, 1.0),)),
        )
    with pytest.raises(ValueError, match="flap_schedule"):
        AdversarialConfig(flapper_fraction=0.2)


def test_quarantine_knobs_validate():
    with pytest.raises(ValueError, match="quarantine-threshold"):
        SimulationConfig(
            proxy_capacity=100, browser_capacity=100, quarantine_threshold=-1
        )
    with pytest.raises(ValueError, match="quarantine_decay"):
        SimulationConfig(
            proxy_capacity=100, browser_capacity=100, quarantine_decay=60.0
        )
    with pytest.raises(ValueError, match="quarantine_decay"):
        SimulationConfig(
            proxy_capacity=100,
            browser_capacity=100,
            quarantine_threshold=1,
            quarantine_decay=0.0,
        )
    with pytest.raises(ValueError, match="static_blacklist"):
        SimulationConfig(
            proxy_capacity=100, browser_capacity=100, static_blacklist=(-1,)
        )


def test_static_blacklist_normalized_sorted_deduplicated():
    config = SimulationConfig(
        proxy_capacity=100, browser_capacity=100, static_blacklist=(2, 0, 2)
    )
    assert config.static_blacklist == (0, 2)


def test_mass_churn_schedule_validates():
    with pytest.raises(ValueError, match="at least one"):
        MassChurnSchedule(windows=())
    with pytest.raises(ValueError, match="start"):
        MassChurnSchedule(windows=((-1.0, 2.0),))
    with pytest.raises(ValueError):
        MassChurnSchedule(windows=((3.0, 3.0),))
    with pytest.raises(ValueError, match="overlap"):
        MassChurnSchedule(windows=((0.0, 5.0), (4.0, 8.0)))


def test_mass_churn_schedule_offline_at():
    schedule = MassChurnSchedule(windows=((1.0, 2.0), (4.0, 6.0)))
    assert not schedule.offline_at(0.5)
    assert schedule.offline_at(1.0)
    assert not schedule.offline_at(2.0)  # end is exclusive
    assert schedule.offline_at(5.0)
    assert not schedule.offline_at(7.0)


# ---------------------------------------------------------------------------
# role assignment


def test_peer_population_deterministic_and_disjoint():
    config = AdversarialConfig(
        polluter_fraction=0.1,
        flapper_fraction=0.2,
        flap_schedule=MassChurnSchedule(windows=((0.0, 1.0),)),
    )
    a = PeerPopulation(config, 100, seed=7)
    b = PeerPopulation(config, 100, seed=7)
    assert a.polluters == b.polluters and a.flappers == b.flappers
    assert len(a.polluters) == 10 and len(a.flappers) == 20
    assert not (a.polluters & a.flappers)
    assert a.is_polluter(next(iter(a.polluters)))
    assert not a.is_polluter(next(iter(a.flappers)))
    c = PeerPopulation(config, 100, seed=8)
    assert c.polluters != a.polluters


def test_for_simulation_matches_engine_seed_derivation():
    config = AdversarialConfig(polluter_fraction=0.3)
    via_classmethod = PeerPopulation.for_simulation(config, 50, 1234)
    direct = PeerPopulation(config, 50, derive_seed(1234, "adversarial"))
    assert via_classmethod.polluters == direct.polluters


# ---------------------------------------------------------------------------
# bit-identity and counter gating on pre-existing configurations


def test_empty_adversarial_config_is_baseline_identical(small_trace):
    base = SimulationConfig.relative(small_trace, proxy_frac=0.1)
    plain = simulate(small_trace, BAPS, base)
    empty = simulate(small_trace, BAPS, base.with_(adversarial=AdversarialConfig()))
    assert dataclasses.asdict(empty) == dataclasses.asdict(plain)


def test_new_counters_stay_zero_without_adversary(small_trace):
    config = SimulationConfig.relative(
        small_trace, proxy_frac=0.1, corruption_rate=0.3
    )
    result = simulate(small_trace, BAPS, config)
    # the global corruption coin still fires, but attribution counters
    # belong to the adversarial model and must stay zero — the frozen
    # differential reference knows nothing about them.
    assert result.integrity_failures > 0
    assert result.corrupt_deliveries == 0
    assert result.poisoned_requests == 0
    assert result.quarantined_peers == 0
    assert result.quarantine_rescued_hits == 0


# ---------------------------------------------------------------------------
# polluters and the per-attempt verification charge (satellite fix)


def test_polluters_charge_verify_cost_on_every_failed_attempt():
    """Every corrupted probe pays transfer + verify, not just the last:
    with two polluter holders and a retry budget, the third requester's
    walk charges the integrity-retransmission meter twice."""
    trace = _chain_trace(3)
    config = _chain_config(
        max_holder_retries=2,
        adversarial=AdversarialConfig(polluter_fraction=1.0),
    )
    result = simulate(trace, BAPS, config)
    # t1: client1 probes holder 0 (corrupt); t2: client2 probes holders
    # 0 and 1 (both corrupt) — three failed attempts in all.
    assert result.integrity_failures == 3
    assert result.corrupt_deliveries == 3
    assert result.poisoned_requests == 2
    per_attempt = config.lan.transfer_time(100) + SecurityOverheadModel().verify_cost(100)
    assert result.overhead.integrity_retransmission_time == pytest.approx(
        3 * per_attempt
    )


def test_background_corruption_rate_applies_to_honest_holders(small_trace):
    """With profiles armed but polluter_fraction=0 every holder is
    honest: draws move to per-holder streams, stay governed by the
    global corruption_rate, and never count as corrupt deliveries."""
    config = SimulationConfig.relative(
        small_trace,
        proxy_frac=0.1,
        corruption_rate=0.3,
        adversarial=AdversarialConfig(polluter_fraction=0.0),
    )
    result = simulate(small_trace, BAPS, config)
    assert result.integrity_failures > 0
    assert result.corrupt_deliveries == 0
    assert result.poisoned_requests == result.poisoned_requests  # round-trips
    assert result.poisoned_requests >= result.integrity_failures // (
        config.max_holder_retries + 1
    )


# ---------------------------------------------------------------------------
# flappers


def test_flappers_go_offline_during_schedule_windows():
    trace = Trace(
        timestamps=np.array([0.0, 5.0, 8.0]),
        clients=np.array([0, 1, 2]),
        docs=np.zeros(3, dtype=np.int64),
        sizes=np.full(3, 100),
        versions=np.zeros(3, dtype=np.int64),
        name="flap",
    )
    config = _chain_config(
        adversarial=AdversarialConfig(
            flapper_fraction=1.0,
            flap_schedule=MassChurnSchedule(windows=((4.0, 6.0),)),
        ),
    )
    result = simulate(trace, BAPS, config)
    # t=5 falls in the offline window: the only holder is unreachable.
    assert result.holder_unavailable == 1
    # t=8 is outside it: some holder served the third request remotely.
    assert result.by_location_remote_hits() == 1


# ---------------------------------------------------------------------------
# quarantine


def test_quarantine_bans_after_threshold():
    trace = _chain_trace(3)
    adversarial = AdversarialConfig(polluter_fraction=1.0)
    undefended = simulate(
        trace, BAPS, _chain_config(max_holder_retries=2, adversarial=adversarial)
    )
    defended = simulate(
        trace,
        BAPS,
        _chain_config(
            max_holder_retries=2,
            adversarial=adversarial,
            quarantine_threshold=1,
        ),
    )
    # one strike bans: each polluter is probed exactly once ever.
    assert undefended.integrity_failures == 3
    assert defended.integrity_failures == 2
    assert defended.quarantined_peers == 2
    assert undefended.quarantined_peers == 0


def test_quarantine_decay_readmits_then_requarantines():
    # client0 holds doc0; client1 takes a strike off it at t=1, then
    # evicts its own copy with doc1; at t=10 only client0 still holds
    # doc0, so re-admission is the only way it gets probed again.
    trace = Trace(
        timestamps=np.array([0.0, 1.0, 2.0, 10.0]),
        clients=np.array([0, 1, 1, 2]),
        docs=np.array([0, 0, 1, 0]),
        sizes=np.full(4, 100),
        versions=np.zeros(4, dtype=np.int64),
        name="decay",
    )
    adversarial = AdversarialConfig(polluter_fraction=1.0)
    base = dict(
        proxy_capacity=0,
        browser_capacity=100,
        adversarial=adversarial,
        quarantine_threshold=1,
    )
    forever = simulate(trace, BAPS, SimulationConfig(**base))
    readmitted = simulate(
        trace, BAPS, SimulationConfig(**base, quarantine_decay=5.0)
    )
    assert forever.quarantined_peers == 1
    # the ban decayed before t=10, the holder got re-probed, failed
    # again, and was re-quarantined with a clean strike slate.
    assert readmitted.quarantined_peers == 2
    assert readmitted.integrity_failures == forever.integrity_failures + 1


def test_static_blacklist_suppresses_holder_and_rescues_hit():
    trace = _chain_trace(3)
    config = _chain_config(static_blacklist=(0,))
    result = simulate(trace, BAPS, config)
    # client1's only candidate is blacklisted: no probe, no rescue.
    # client2 still hits remotely off client1 while the ban list
    # filtered a qualifying candidate — a rescued hit.
    assert result.integrity_failures == 0
    assert result.quarantined_peers == 0  # static entries are not counted
    assert result.by_location_remote_hits() == 1
    assert result.quarantine_rescued_hits == 1


# ---------------------------------------------------------------------------
# journal round-trip and sweep determinism


def _attack_overrides(duration: float) -> dict:
    return dict(
        adversarial=AdversarialConfig(
            polluter_fraction=0.25,
            flapper_fraction=0.25,
            flap_schedule=MassChurnSchedule(
                windows=((0.3 * duration, 0.6 * duration),)
            ),
        ),
        quarantine_threshold=2,
        max_holder_retries=2,
    )


def test_adversarial_counters_roundtrip_through_journal(small_trace):
    duration = float(small_trace.timestamps.max())
    config = SimulationConfig.relative(
        small_trace, proxy_frac=0.1, **_attack_overrides(duration)
    )
    result = simulate(small_trace, BAPS, config)
    assert result.corrupt_deliveries > 0
    assert result.poisoned_requests > 0
    assert result.quarantined_peers > 0
    restored = assert_result_roundtrips(result)
    assert restored.corrupt_deliveries == result.corrupt_deliveries
    assert restored.quarantine_rescued_hits == result.quarantine_rescued_hits


@pytest.mark.parametrize("workers", [1, 4])
def test_adversarial_sweep_bit_identical_across_worker_counts(
    small_trace, workers
):
    duration = float(small_trace.timestamps.max())
    grid = dict(
        organizations=(BAPS, Organization.GLOBAL_BROWSERS_ONLY),
        fractions=(0.05, 0.2),
        **_attack_overrides(duration),
    )
    serial = run_policy_sweep(small_trace, workers=0, **grid)
    parallel = run_policy_sweep(small_trace, workers=workers, **grid)
    assert not serial.failures and not parallel.failures
    for key in serial.results:
        assert dataclasses.asdict(serial.results[key]) == dataclasses.asdict(
            parallel.results[key]
        ), f"adversarial cell {key} diverged at workers={workers}"
    assert any(r.quarantined_peers > 0 for r in serial.results.values())


def test_adversarial_sweep_resumes_from_journal_bit_identical(
    small_trace, tmp_path
):
    from repro.core import EngineOptions

    duration = float(small_trace.timestamps.max())
    grid = dict(
        organizations=(BAPS,),
        fractions=(0.05, 0.2),
        **_attack_overrides(duration),
    )
    journal = str(tmp_path / "adversarial.jsonl")
    live = run_policy_sweep(
        small_trace, workers=0, options=EngineOptions(journal=journal), **grid
    )
    assert not live.failures
    resumed = run_policy_sweep(
        small_trace, workers=0, options=EngineOptions(resume=journal), **grid
    )
    assert not resumed.failures
    assert all(n == 0 for n in resumed.attempts.values())
    for key in live.results:
        assert dataclasses.asdict(live.results[key]) == dataclasses.asdict(
            resumed.results[key]
        )
        assert (
            resumed.results[key].corrupt_deliveries
            == live.results[key].corrupt_deliveries
        )


# ---------------------------------------------------------------------------
# streaming engine rejects the new knobs by name


def test_stream_engine_rejects_adversarial_profiles(small_trace):
    config = SimulationConfig.relative(small_trace, proxy_frac=0.1).with_(
        adversarial=AdversarialConfig()
    )
    with pytest.raises(ValueError, match="adversarial"):
        simulate_stream(small_trace, BAPS, config)


def test_stream_engine_rejects_quarantine(small_trace):
    base = SimulationConfig.relative(small_trace, proxy_frac=0.1)
    with pytest.raises(ValueError, match="quarantine"):
        simulate_stream(small_trace, BAPS, base.with_(quarantine_threshold=1))
    with pytest.raises(ValueError, match="quarantine"):
        simulate_stream(small_trace, BAPS, base.with_(static_blacklist=(0,)))


# ---------------------------------------------------------------------------
# surge generators


def test_flash_crowd_is_deterministic_and_consistent(small_trace):
    duration = float(small_trace.timestamps.max())
    spec = FlashCrowdSpec(start=duration / 3, end=2 * duration / 3, multiplier=6.0)
    surged = inject_flash_crowd(small_trace, spec, seed=0)
    again = inject_flash_crowd(small_trace, spec, seed=0)
    assert surged.name == f"{small_trace.name}:flash"
    assert len(surged) == len(small_trace)
    for column in ("timestamps", "clients", "docs", "sizes", "versions"):
        assert (
            getattr(surged, column).tobytes() == getattr(again, column).tobytes()
        ), column
    # requesters and request times are untouched — only targets moved
    assert surged.timestamps.tobytes() == small_trace.timestamps.tobytes()
    assert surged.clients.tobytes() == small_trace.clients.tobytes()
    # the surge actually concentrated in-window popularity
    window = (surged.timestamps >= spec.start) & (surged.timestamps < spec.end)
    target = np.bincount(surged.docs[window]).argmax()
    before = int((small_trace.docs[window] == target).sum())
    after = int((surged.docs[window] == target).sum())
    assert after > before
    # sizes stay a function of (doc, version)
    pairs = {}
    for d, v, s in zip(surged.docs, surged.versions, surged.sizes):
        assert pairs.setdefault((int(d), int(v)), int(s)) == int(s)


def test_flash_crowd_empty_window_is_identity(small_trace):
    duration = float(small_trace.timestamps.max())
    spec = FlashCrowdSpec(start=duration + 10, end=duration + 20)
    assert inject_flash_crowd(small_trace, spec) is small_trace


def test_flash_crowd_validates():
    with pytest.raises(ValueError, match="start"):
        FlashCrowdSpec(start=5.0, end=5.0)
    with pytest.raises(ValueError, match="multiplier"):
        FlashCrowdSpec(start=0.0, end=1.0, multiplier=1.0)
    with pytest.raises(ValueError, match="doc"):
        FlashCrowdSpec(start=0.0, end=1.0, doc=-1)


def test_flash_crowd_rejects_absent_target(small_trace):
    duration = float(small_trace.timestamps.max())
    absent = int(small_trace.docs.max()) + 1
    spec = FlashCrowdSpec(start=0.0, end=duration, doc=absent)
    with pytest.raises(ValueError, match="never"):
        inject_flash_crowd(small_trace, spec)


def test_mass_churn_schedule_generator_deterministic():
    a = mass_churn_schedule(10_000.0, n_waves=3, offline_seconds=600.0, seed=5)
    b = mass_churn_schedule(10_000.0, n_waves=3, offline_seconds=600.0, seed=5)
    assert a.windows == b.windows
    assert 1 <= len(a.windows) <= 3
    for start, end in a.windows:
        assert 0.0 <= start < end <= 10_000.0
    # windows are sorted and non-overlapping (MassChurnSchedule enforces
    # it at construction; this pins the generator's merging too)
    flat = [edge for window in a.windows for edge in window]
    assert flat == sorted(flat)


# ---------------------------------------------------------------------------
# the stress experiment


@pytest.fixture(scope="module")
def stress_trace():
    from repro.traces.profiles import get_profile

    # 100 clients: large enough for cohort statistics (the 20-client
    # unit-test trace makes a 10% polluter cohort pure noise).
    return get_profile("NLANR-uc").scaled(6_000).generate()


def test_stress_sweep_small(monkeypatch, stress_trace):
    from repro.experiments import stress

    monkeypatch.setattr(
        stress, "load_paper_trace", lambda name, cache=True: stress_trace
    )
    result = stress.run()
    text = result.render()
    assert "adversarial stress" in text
    assert "no defense" in text and "oracle" in text
    assert result.betweenness_holds()
    assert result.has_strict_cell()
    # acceptance: at polluter_fraction >= 0.1 the best threshold
    # recovers at least half of the recoverable hit-ratio loss.
    for fraction in result.polluter_fractions:
        if fraction >= 0.1:
            assert result.best_recovered_fraction(fraction) >= 0.5
    # the attack and the defense both demonstrably fired in every cell
    assert all(r.corrupt_deliveries > 0 for r in result.cells.values())
    assert all(r.quarantined_peers > 0 for r in result.cells.values())
    assert all(r.corrupt_deliveries > 0 for r in result.no_defense.values())
    assert all(r.quarantined_peers == 0 for r in result.no_defense.values())


def test_stress_sweep_flash_crowd_and_runner_forwarding(
    monkeypatch, stress_trace
):
    from repro.experiments import runner, stress

    monkeypatch.setattr(
        stress, "load_paper_trace", lambda name, cache=True: stress_trace
    )
    result = runner.run_experiment(
        "stress",
        polluter_fractions=(0.2,),
        quarantine_thresholds=(1,),
        flash_crowd=True,
    )
    assert result.flash_crowd
    assert result.polluter_fractions == (0.2,)
    assert result.trace_name.endswith(":flash")
    assert "flash crowd" in result.render()
    assert result.betweenness_holds()


def test_stress_sweep_rejects_zero_threshold(monkeypatch, stress_trace):
    from repro.experiments import stress

    monkeypatch.setattr(
        stress, "load_paper_trace", lambda name, cache=True: stress_trace
    )
    with pytest.raises(ValueError, match="quarantine"):
        stress.run(quarantine_thresholds=(0,))
