"""Proxy crash recovery: fault schedules, checkpoints, rebuild, degraded mode."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import (
    CheckpointPolicy,
    IndexCheckpointer,
    Organization,
    ProxyFaultModel,
    ProxyFaultSchedule,
    SimulationConfig,
    result_from_jsonable,
    result_to_jsonable,
    run_policy_sweep,
    simulate,
)
from repro.index.browser_index import BrowserIndex
from repro.index.engine_bloom import BloomBrowserIndex
from repro.traces.record import Trace

from tests.conftest import assert_result_roundtrips

BAPS = Organization.BROWSERS_AWARE_PROXY


# -- fault model validation ---------------------------------------------------


def test_fault_model_needs_a_crash_source():
    with pytest.raises(ValueError, match="--proxy-crash-rate"):
        ProxyFaultModel()


def test_fault_model_rejects_both_sources():
    with pytest.raises(ValueError, match="not both"):
        ProxyFaultModel(crash_rate=0.1, crash_times=(10.0,))


def test_fault_model_rejects_empty_schedule():
    with pytest.raises(ValueError, match="--proxy-crash-at"):
        ProxyFaultModel(crash_times=())


def test_fault_model_rejects_negative_times():
    with pytest.raises(ValueError, match="--proxy-crash-at"):
        ProxyFaultModel(crash_times=(10.0, -1.0))


def test_fault_model_rejects_negative_rate():
    with pytest.raises(ValueError, match="--proxy-crash-rate"):
        ProxyFaultModel(crash_rate=-0.5)


def test_fault_model_rejects_unknown_distribution():
    with pytest.raises(ValueError, match="distribution"):
        ProxyFaultModel(crash_rate=0.1, distribution="weibull")


def test_fault_model_rejects_heavy_pareto():
    with pytest.raises(ValueError, match="pareto_alpha"):
        ProxyFaultModel(crash_rate=0.1, distribution="pareto", pareto_alpha=1.0)


def test_fault_model_sorts_crash_times():
    model = ProxyFaultModel(crash_times=(30.0, 10.0, 20.0))
    assert model.crash_times == (10.0, 20.0, 30.0)
    assert model.is_explicit


def test_checkpoint_policy_validation():
    with pytest.raises(ValueError, match="--checkpoint-interval"):
        CheckpointPolicy(interval=0.0)
    with pytest.raises(ValueError, match="full_every"):
        CheckpointPolicy(full_every=0)


def test_reannounce_rate_validation():
    with pytest.raises(ValueError, match="--reannounce-rate"):
        SimulationConfig(
            proxy_capacity=1000, browser_capacity=100, reannounce_rate=0.0
        )


# -- fault schedule -----------------------------------------------------------


def test_explicit_schedule_constructs_no_rng():
    schedule = ProxyFaultSchedule(ProxyFaultModel(crash_times=(5.0, 9.0)))
    assert schedule._rng is None
    assert schedule.peek(4.0) is None
    assert schedule.peek(5.0) == 5.0
    assert schedule.pop() == 5.0
    assert schedule.peek(5.0) is None
    assert schedule.peek(100.0) == 9.0
    assert schedule.pop() == 9.0
    assert schedule.peek(1e9) is None


def test_rate_schedule_is_seed_deterministic():
    model = ProxyFaultModel(crash_rate=0.01)

    def draw(seed, n=5):
        schedule = ProxyFaultSchedule(model, seed=seed)
        out = []
        for _ in range(n):
            assert schedule.peek(1e12) is not None
            out.append(schedule.pop())
        return out

    a, b = draw(7), draw(7)
    assert a == b
    assert a == sorted(a)  # crash times strictly advance
    assert draw(8) != a  # and depend on the seed


def test_pareto_schedule_draws_positive_gaps():
    model = ProxyFaultModel(
        crash_rate=0.01, distribution="pareto", pareto_alpha=2.5
    )
    schedule = ProxyFaultSchedule(model, seed=3)
    last = 0.0
    for _ in range(10):
        t = schedule.pop()
        assert t > last
        last = t


# -- checkpointer -------------------------------------------------------------


def _filled_index(n_docs: int = 5) -> BrowserIndex:
    index = BrowserIndex(n_clients=4)
    for doc in range(n_docs):
        index.record_insert(doc % 4, doc, version=0, size=100, now=float(doc))
    return index


def test_checkpointer_full_then_incremental():
    ck = IndexCheckpointer(CheckpointPolicy(interval=10.0, full_every=3))
    index = _filled_index()
    assert ck.next_due(9.0) is None
    assert ck.next_due(10.0) == 10.0
    cost = ck.take(index, 10.0)
    assert cost == pytest.approx(ck.latest().n_bytes / 50e6)
    assert ck.latest().full
    assert ck.full_snapshots == 1
    # next deadline advanced; the second snapshot is incremental and
    # delta-sized (no events since -> the 64-byte floor).
    assert ck.next_due(19.0) is None
    ck.take(index, 20.0)
    second = ck.latest()
    assert not second.full
    assert second.n_bytes == IndexCheckpointer.MIN_SNAPSHOT_BYTES
    # restore chain = full + incremental
    assert second.restore_bytes > second.n_bytes
    assert ck.restore_time() == pytest.approx(second.restore_bytes / 50e6)


def test_checkpointer_reset_after_crash_goes_full():
    ck = IndexCheckpointer(CheckpointPolicy(interval=10.0, full_every=5))
    index = _filled_index()
    ck.take(index, 10.0)
    ck.take(index, 20.0)
    assert ck.incremental_snapshots == 1
    ck.reset_after_crash(25.0)
    assert ck.next_due(34.9) is None
    assert ck.next_due(35.0) == 35.0
    ck.take(index, 35.0)
    assert ck.latest().full  # post-crash snapshot restarts the chain


# -- index snapshot / restore / reannounce ------------------------------------


def test_exact_index_snapshot_roundtrip():
    index = _filled_index()
    payload = index.export_snapshot()
    fresh = BrowserIndex(n_clients=4)
    fresh.restore_snapshot(payload)
    assert fresh.n_entries == index.n_entries
    for doc in range(5):
        assert fresh.holders_of(doc) == index.holders_of(doc)


def test_exact_index_restored_entries_tracked():
    index = _filled_index()
    fresh = BrowserIndex(n_clients=4)
    fresh.restore_snapshot(index.export_snapshot())
    fresh.record_false_hit(client=0, doc=0)
    assert fresh.stats.false_hits == 1
    assert fresh.stats.false_hits_after_restore == 1
    # a live event refreshes the pair: no longer recovery staleness
    fresh.record_insert(0, 0, version=1, size=100, now=50.0, replace=True)
    fresh.record_false_hit(client=0, doc=0)
    assert fresh.stats.false_hits == 2
    assert fresh.stats.false_hits_after_restore == 1


def test_exact_index_reannounce_replaces_client_state():
    index = _filled_index()
    fresh = BrowserIndex(n_clients=4)
    fresh.restore_snapshot(index.export_snapshot())
    # client 0 actually holds only doc 7 now
    n = fresh.reannounce(0, [(7, 0, 100)], now=60.0)
    assert n == 1
    assert fresh.holders_of(7) == [0]
    assert 0 not in fresh.holders_of(0)
    assert 0 not in fresh.holders_of(4)
    assert fresh.reannouncements == 1
    # announced entries are live, not restored
    fresh.record_false_hit(client=0, doc=7)
    assert fresh.stats.false_hits_after_restore == 0


def test_bloom_index_snapshot_roundtrip_and_reannounce():
    index = BloomBrowserIndex(n_clients=3, expected_docs_per_client=8)
    for doc in range(4):
        index.record_insert(doc % 3, doc, version=0, size=100, now=float(doc))
    payload = index.export_snapshot()
    fresh = BloomBrowserIndex(n_clients=3, expected_docs_per_client=8)
    fresh.restore_snapshot(payload)
    for doc in range(4):
        assert fresh.holders_of(doc) == index.holders_of(doc)
    # restored summaries count recovery false hits until re-announced
    fresh.record_false_hit(client=1, doc=1)
    assert fresh.stats.false_hits_after_restore == 1
    fresh.reannounce(1, [(9, 0, 100)], now=10.0)
    assert 1 in fresh.holders_of(9)
    fresh.record_false_hit(client=1, doc=9)
    assert fresh.stats.false_hits_after_restore == 1  # unchanged
    assert fresh.reannouncements == 1


def test_restore_does_not_mutate_donor_snapshot():
    index = BloomBrowserIndex(n_clients=2, expected_docs_per_client=8)
    index.record_insert(0, 1, version=0, size=100, now=0.0)
    payload = index.export_snapshot()
    fresh = BloomBrowserIndex(n_clients=2, expected_docs_per_client=8)
    fresh.restore_snapshot(payload)
    fresh.record_insert(0, 2, version=0, size=100, now=1.0)
    assert 2 not in payload["filters"][0]


# -- engine integration -------------------------------------------------------


def _config(trace, **kwargs) -> SimulationConfig:
    return SimulationConfig.relative(
        trace, proxy_frac=0.10, browser_sizing="average", **kwargs
    )


def _duration(trace) -> float:
    return float(trace.timestamps.max())


def test_crash_lowers_hit_ratio_and_counts(small_trace):
    dur = _duration(small_trace)
    plain = simulate(small_trace, BAPS, _config(small_trace))
    crashed = simulate(
        small_trace,
        BAPS,
        _config(
            small_trace,
            proxy_faults=ProxyFaultModel(crash_times=(0.35 * dur, 0.7 * dur)),
            reannounce_rate=0.02,
        ),
    )
    assert crashed.proxy_crashes == 2
    assert crashed.hit_ratio < plain.hit_ratio
    assert crashed.degraded_window_requests > 0
    assert crashed.hits_lost_to_recovery > 0
    assert crashed.recovery_time > 0
    assert crashed.checkpoint_bytes_written == 0  # no checkpointing armed
    assert plain.proxy_crashes == 0
    assert plain.recovery_time == 0.0


def test_checkpointing_recovers_hit_ratio(small_trace):
    dur = _duration(small_trace)
    faults = ProxyFaultModel(crash_times=(0.35 * dur, 0.7 * dur))
    base = _config(small_trace, proxy_faults=faults, reannounce_rate=0.02)
    plain = simulate(small_trace, BAPS, _config(small_trace))
    no_ck = simulate(small_trace, BAPS, base)
    with_ck = simulate(
        small_trace, BAPS, base.with_(checkpoint=CheckpointPolicy(interval=dur / 24))
    )
    assert with_ck.checkpoint_bytes_written > 0
    assert with_ck.overhead.checkpoint_time > 0
    assert no_ck.hit_ratio <= with_ck.hit_ratio <= plain.hit_ratio
    # a restored index loses fewer sharing opportunities in the window
    assert with_ck.hits_lost_to_recovery <= no_ck.hits_lost_to_recovery


def test_checkpoint_without_faults_charges_but_restores_nothing(small_trace):
    dur = _duration(small_trace)
    plain = simulate(small_trace, BAPS, _config(small_trace))
    insured = simulate(
        small_trace,
        BAPS,
        _config(small_trace, checkpoint=CheckpointPolicy(interval=dur / 10)),
    )
    assert insured.proxy_crashes == 0
    assert insured.checkpoint_bytes_written > 0
    assert insured.overhead.checkpoint_time > 0
    # snapshots never change what the engine serves
    assert insured.hit_ratio == plain.hit_ratio
    assert insured.hits == plain.hits


def test_rate_based_crashes_are_reproducible(small_trace):
    config = _config(
        small_trace,
        proxy_faults=ProxyFaultModel(crash_rate=1 / 400.0),
        reannounce_rate=0.05,
    )
    a = simulate(small_trace, BAPS, config)
    b = simulate(small_trace, BAPS, config)
    assert a.proxy_crashes > 0
    assert dataclasses.asdict(a) == dataclasses.asdict(b)
    # a different master seed moves the crash times
    c = simulate(small_trace, BAPS, config.with_(availability_seed=9))
    assert dataclasses.asdict(c) != dataclasses.asdict(a)


def test_recovery_counters_roundtrip_through_journal(small_trace):
    dur = _duration(small_trace)
    result = simulate(
        small_trace,
        BAPS,
        _config(
            small_trace,
            proxy_faults=ProxyFaultModel(crash_times=(0.5 * dur,)),
            checkpoint=CheckpointPolicy(interval=dur / 12),
            reannounce_rate=0.02,
        ),
    )
    assert result.proxy_crashes == 1
    # exhaustive dataclasses.fields()-driven round-trip (conftest)
    restored = assert_result_roundtrips(result)
    assert restored.proxy_crashes == 1


def test_old_journal_records_still_load(small_trace):
    record = result_to_jsonable(simulate(small_trace, BAPS, _config(small_trace)))
    for key in (
        "proxy_crashes",
        "recovery_time",
        "degraded_window_requests",
        "hits_lost_to_recovery",
        "checkpoint_bytes_written",
    ):
        record.pop(key, None)
    restored = result_from_jsonable(record)
    assert restored.proxy_crashes == 0
    assert restored.recovery_time == 0.0


def test_default_config_constructs_no_fault_rng(small_trace, monkeypatch):
    def explode(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("ProxyFaultSchedule constructed without faults")

    monkeypatch.setattr(ProxyFaultSchedule, "__init__", explode)
    result = simulate(small_trace, BAPS, _config(small_trace))
    assert result.proxy_crashes == 0


def test_recovery_identical_across_worker_counts(small_trace):
    dur = _duration(small_trace)
    grid = dict(
        organizations=(BAPS,),
        fractions=(0.05, 0.2),
        browser_sizing="minimum",
        proxy_faults=ProxyFaultModel(crash_times=(0.35 * dur, 0.7 * dur)),
        checkpoint=CheckpointPolicy(interval=dur / 24),
        reannounce_rate=0.02,
    )
    serial = run_policy_sweep(small_trace, workers=0, **grid)
    pooled = run_policy_sweep(small_trace, workers=2, **grid)
    assert not serial.failures and not pooled.failures
    for key, result in serial.results.items():
        assert dataclasses.asdict(result) == dataclasses.asdict(
            pooled.results[key]
        )
        assert result.proxy_crashes == 2


def test_bloom_index_survives_crash_recovery(small_trace):
    dur = _duration(small_trace)
    result = simulate(
        small_trace,
        BAPS,
        _config(
            small_trace,
            index_kind="bloom",
            proxy_faults=ProxyFaultModel(crash_times=(0.5 * dur,)),
            checkpoint=CheckpointPolicy(interval=dur / 12),
            reannounce_rate=0.02,
        ),
    )
    assert result.proxy_crashes == 1
    assert result.checkpoint_bytes_written > 0


# -- staleness introduced by recovery -----------------------------------------


def test_restored_entry_is_charged_as_false_hit():
    """A checkpoint predating an eviction makes the restored index lie.

    Layout: client 1 caches doc 0 at t=0; the t=15 checkpoint
    (processed at t=20) records that; at t=20 doc 1 evicts doc 0 from
    client 1's 150-byte browser; the proxy crashes at t=25 and restores
    the stale snapshot.  Client 0's t=40 request for doc 0 then gets
    pointed at client 1, pays the wasted probe, and the false hit is
    attributed to recovery.
    """
    trace = Trace(
        timestamps=np.array([0.0, 20.0, 40.0]),
        clients=np.array([1, 1, 0]),
        docs=np.array([0, 1, 0]),
        sizes=np.array([100, 100, 100]),
        versions=np.zeros(3, dtype=np.int64),
        name="restore-staleness",
    )
    config = SimulationConfig(
        proxy_capacity=10_000,
        browser_capacity=10_000,
        browser_capacities=(10_000, 150),
        proxy_faults=ProxyFaultModel(crash_times=(25.0,)),
        checkpoint=CheckpointPolicy(interval=15.0),
        reannounce_rate=1e-4,  # nobody re-announces before t=40
    )
    result = simulate(trace, BAPS, config)
    assert result.proxy_crashes == 1
    assert result.index_false_hits == 1
    assert result.overhead.wasted_false_hit_time > 0
    assert result.index_stats.false_hits_after_restore == 1


def test_reannouncement_corrects_restored_staleness():
    """Same layout, but a fast re-announcement lands before t=40: the
    stale restored entry is replaced and the lookup finds the truth."""
    trace = Trace(
        timestamps=np.array([0.0, 20.0, 40.0]),
        clients=np.array([1, 1, 0]),
        docs=np.array([0, 1, 0]),
        sizes=np.array([100, 100, 100]),
        versions=np.zeros(3, dtype=np.int64),
        name="restore-healed",
    )
    config = SimulationConfig(
        proxy_capacity=10_000,
        browser_capacity=10_000,
        browser_capacities=(10_000, 150),
        proxy_faults=ProxyFaultModel(crash_times=(25.0,)),
        checkpoint=CheckpointPolicy(interval=15.0),
        reannounce_rate=1.0,  # client 1 re-announces at t=26
    )
    result = simulate(trace, BAPS, config)
    assert result.proxy_crashes == 1
    assert result.index_stats.false_hits_after_restore == 0
    assert result.index_false_hits == 0
