"""The parallel sweep engine: determinism, failure capture, progress.

The engine's contract is that ``workers=0``, ``workers=1``, and
``workers=4`` produce *bit-identical* ``SimulationResult``s — the
comparison here is on ``dataclasses.asdict`` of the whole result, not
just the headline ratios.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import (
    CellEvent,
    Organization,
    SimulationConfig,
    build_cells,
    resolve_workers,
    run_cells,
    run_policy_sweep,
)
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace
from repro.util.rng import derive_seed

ORGS = (Organization.PROXY_AND_LOCAL_BROWSER, Organization.BROWSERS_AWARE_PROXY)
FRACTIONS = (0.05, 0.2)


def result_fingerprint(result) -> dict:
    """The full state of a SimulationResult, for exact comparison."""
    return dataclasses.asdict(result)


@pytest.mark.parametrize("workers", [1, 4])
def test_sweep_bit_identical_across_worker_counts(small_trace, workers):
    serial = run_policy_sweep(
        small_trace, organizations=ORGS, fractions=FRACTIONS, workers=0
    )
    parallel = run_policy_sweep(
        small_trace, organizations=ORGS, fractions=FRACTIONS, workers=workers
    )
    assert not serial.failures and not parallel.failures
    assert set(serial.results) == set(parallel.results)
    for key in serial.results:
        assert result_fingerprint(serial.results[key]) == result_fingerprint(
            parallel.results[key]
        ), f"cell {key} diverged at workers={workers}"


def test_sweep_with_availability_draws_is_deterministic(small_trace):
    """Cells with stochastic holder-availability draws get identity-derived
    seeds, so repeated runs — at any worker count — agree exactly."""
    kwargs = dict(
        organizations=ORGS,
        fractions=FRACTIONS,
        holder_availability=0.5,
    )
    first = run_policy_sweep(small_trace, workers=0, **kwargs)
    again = run_policy_sweep(small_trace, workers=0, **kwargs)
    pooled = run_policy_sweep(small_trace, workers=2, **kwargs)
    for key in first.results:
        assert result_fingerprint(first.results[key]) == result_fingerprint(
            again.results[key]
        )
        assert result_fingerprint(first.results[key]) == result_fingerprint(
            pooled.results[key]
        )
    # distinct cells draw from distinct streams
    baps = [
        first.results[(Organization.BROWSERS_AWARE_PROXY, f)] for f in FRACTIONS
    ]
    assert all(r.holder_unavailable > 0 for r in baps)


@pytest.mark.parametrize("workers", [1, 4])
def test_federated_sweep_bit_identical_across_worker_counts(small_trace, workers):
    """Federation runs through the same cell machinery: workers 0/1/4
    must agree exactly, including every new inter-proxy counter."""
    from repro.core import FederationConfig

    fed = FederationConfig(n_proxies=2, digest_period=600.0)
    serial = run_policy_sweep(
        small_trace, organizations=ORGS, fractions=FRACTIONS, workers=0,
        federation=fed,
    )
    parallel = run_policy_sweep(
        small_trace, organizations=ORGS, fractions=FRACTIONS, workers=workers,
        federation=fed,
    )
    assert not serial.failures and not parallel.failures
    for key in serial.results:
        assert result_fingerprint(serial.results[key]) == result_fingerprint(
            parallel.results[key]
        ), f"federated cell {key} diverged at workers={workers}"
    assert any(r.interproxy_hits > 0 for r in serial.results.values())


def test_federated_sweep_resumes_from_journal_bit_identical(small_trace, tmp_path):
    """A federated sweep journaled and resumed restores every cell —
    new counters included — without re-simulating anything."""
    from repro.core import EngineOptions, FederationConfig

    fed = FederationConfig(n_proxies=2, digest_period=600.0)
    journal = str(tmp_path / "federation.jsonl")
    live = run_policy_sweep(
        small_trace, organizations=ORGS, fractions=FRACTIONS, workers=0,
        options=EngineOptions(journal=journal), federation=fed,
    )
    assert not live.failures
    resumed = run_policy_sweep(
        small_trace, organizations=ORGS, fractions=FRACTIONS, workers=0,
        options=EngineOptions(resume=journal), federation=fed,
    )
    assert not resumed.failures
    assert all(n == 0 for n in resumed.attempts.values())
    for key in live.results:
        assert result_fingerprint(live.results[key]) == result_fingerprint(
            resumed.results[key]
        )
        assert resumed.results[key].interproxy_hits == live.results[key].interproxy_hits


def test_synthetic_trace_generation_byte_identical():
    config = SyntheticTraceConfig(n_requests=5_000, n_clients=16, name="twice")
    a = generate_trace(config, seed=7)
    b = generate_trace(config, seed=7)
    for column in ("timestamps", "clients", "docs", "sizes", "versions"):
        assert getattr(a, column).tobytes() == getattr(b, column).tobytes(), column
    c = generate_trace(config, seed=8)
    assert c.docs.tobytes() != a.docs.tobytes()


def _poisoned_cells(trace):
    """A 2x1 grid plus one cell whose config crashes the simulator
    (tiered memory model with a non-LRU policy raises ValueError)."""
    good = SimulationConfig(proxy_capacity=20_000, browser_capacity=5_000)
    cells = build_cells(trace.name, ORGS, (0.1,), lambda f: good)
    bad_config = good.with_(memory_fraction=0.5, proxy_policy="fifo")
    cells.append(dataclasses.replace(cells[0], index=len(cells), config=bad_config))
    return cells


@pytest.mark.parametrize("workers", [0, 2])
def test_crashing_cell_reports_instead_of_killing_sweep(small_trace, workers):
    cells = _poisoned_cells(small_trace)
    run = run_cells(cells, {small_trace.name: small_trace}, workers=workers)
    assert sorted(run.results) == [0, 1]
    assert len(run.failures) == 1 and not run.ok
    failure = run.failures[0]
    assert failure.cell.index == 2
    assert "ValueError" in failure.error
    assert "tiered memory model" in failure.error
    assert "Traceback" in failure.traceback
    with pytest.raises(KeyError, match="failed"):
        run.result_for(cells[2])
    # successful cells are still reachable
    assert run.result_for(cells[0]).n_requests == len(small_trace)


def test_progress_events(small_trace):
    events: list[CellEvent] = []
    run = run_cells(
        _poisoned_cells(small_trace),
        {small_trace.name: small_trace},
        workers=0,
        progress=events.append,
    )
    assert len(events) == 3
    assert [e.completed for e in events] == [1, 2, 3]
    assert all(e.total == 3 for e in events)
    assert [e.ok for e in events] == [True, True, False]
    assert all(e.elapsed >= 0 for e in events)
    assert run.timing is not None
    assert run.timing.n_cells == 3
    assert len(run.timing.cell_seconds) == 3
    assert run.timing.total_cell_seconds == pytest.approx(
        sum(run.timing.cell_seconds)
    )
    assert run.timing.cells_per_second > 0
    assert "sweep timing" in run.timing.render()


def test_run_cells_rejects_unknown_trace(small_trace):
    cells = build_cells(
        "elsewhere",
        ORGS,
        (0.1,),
        lambda f: SimulationConfig(proxy_capacity=1_000, browser_capacity=500),
    )
    with pytest.raises(KeyError, match="elsewhere"):
        run_cells(cells, {small_trace.name: small_trace}, workers=0)


def test_resolve_workers():
    assert resolve_workers(0) == 0
    assert resolve_workers(3) == 3
    assert resolve_workers(None) >= 1
    with pytest.raises(ValueError):
        resolve_workers(-1)


def test_derive_seed_stable_and_distinct():
    a = derive_seed(0, "NLANR-uc", "proxy-cache-only", "0.05")
    assert a == derive_seed(0, "NLANR-uc", "proxy-cache-only", "0.05")
    assert 0 <= a < 2**63
    others = {
        derive_seed(0, "NLANR-uc", "proxy-cache-only", "0.1"),
        derive_seed(0, "NLANR-uc", "browsers-aware-proxy-server", "0.05"),
        derive_seed(1, "NLANR-uc", "proxy-cache-only", "0.05"),
        derive_seed(0, "BU-95", "proxy-cache-only", "0.05"),
    }
    assert a not in others and len(others) == 4


def test_cell_seeds_are_identity_derived(small_trace):
    """Seeds depend only on cell identity — rebuilding the grid in any
    shape assigns the same seed to the same (trace, org, fraction)."""
    config = SimulationConfig(proxy_capacity=1_000, browser_capacity=500)
    full = build_cells(small_trace.name, ORGS, FRACTIONS, lambda f: config)
    just_one = build_cells(
        small_trace.name, (Organization.BROWSERS_AWARE_PROXY,), (0.2,), lambda f: config
    )
    by_identity = {(c.organization, c.fraction): c.seed for c in full}
    assert (
        by_identity[(Organization.BROWSERS_AWARE_PROXY, 0.2)] == just_one[0].seed
    )


def test_sweep_timing_attached_and_ordered(small_trace):
    sweep = run_policy_sweep(
        small_trace, organizations=ORGS, fractions=FRACTIONS, workers=0
    )
    timing = sweep.timing
    assert timing is not None
    assert timing.workers == 0
    assert timing.n_cells == len(ORGS) * len(FRACTIONS)
    assert timing.mean_cell_seconds > 0
    assert timing.max_cell_seconds >= timing.mean_cell_seconds
    assert timing.speedup_vs_serial == pytest.approx(
        timing.total_cell_seconds / timing.wall_seconds
    )


def test_numpy_results_pickle_roundtrip(small_trace):
    """SimulationResults cross process boundaries; a pickle round trip
    must preserve every field (guards against unpicklable additions)."""
    import pickle

    sweep = run_policy_sweep(
        small_trace, organizations=ORGS, fractions=(0.1,), workers=0
    )
    result = sweep.get(Organization.BROWSERS_AWARE_PROXY, 0.1)
    clone = pickle.loads(pickle.dumps(result))
    assert result_fingerprint(clone) == result_fingerprint(result)


def test_small_trace_columns_are_numpy(small_trace):
    # the worker initializer ships traces by pickle; sanity-check the payload
    assert isinstance(small_trace.docs, np.ndarray)
