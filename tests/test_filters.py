"""Trace filtering / client sub-setting tests."""

import numpy as np
import pytest

from repro.traces.filters import cacheable_only, head, select_clients
from repro.traces.record import Trace


@pytest.fixture()
def trace():
    return Trace(
        timestamps=np.arange(10, dtype=float),
        clients=np.array([0, 0, 0, 0, 1, 1, 2, 2, 2, 3]),
        docs=np.arange(10),
        sizes=np.array([10, 20, 0, 40, 50, 60, 70, 80, 90, 5_000]),
        versions=np.zeros(10, dtype=np.int64),
        name="f",
    )


def test_select_fraction_by_id(trace):
    sub = select_clients(trace, fraction=0.5)
    assert sub.n_clients == 2
    assert len(sub) == 6  # clients 0 and 1


def test_select_fraction_by_activity(trace):
    sub = select_clients(trace, fraction=0.25, order="activity")
    # busiest client is 0 (4 requests)
    assert len(sub) == 4


def test_select_explicit_ids(trace):
    sub = select_clients(trace, client_ids=[2, 3], renumber=False)
    assert set(np.unique(sub.clients)) == {2, 3}


def test_select_renumbers_by_default(trace):
    sub = select_clients(trace, client_ids=[2, 3])
    assert set(np.unique(sub.clients)) == {0, 1}


def test_select_validation(trace):
    with pytest.raises(ValueError):
        select_clients(trace)
    with pytest.raises(ValueError):
        select_clients(trace, fraction=0.5, client_ids=[1])
    with pytest.raises(ValueError):
        select_clients(trace, fraction=0.0)
    with pytest.raises(ValueError):
        select_clients(trace, fraction=1.5)
    with pytest.raises(ValueError):
        select_clients(trace, client_ids=[])
    with pytest.raises(ValueError):
        select_clients(trace, fraction=0.5, order="zodiac")


def test_select_full_fraction_keeps_everything(trace):
    sub = select_clients(trace, fraction=1.0)
    assert len(sub) == len(trace)


def test_head(trace):
    assert len(head(trace, 3)) == 3
    assert len(head(trace, 100)) == 10
    assert len(head(trace, 0)) == 0
    with pytest.raises(ValueError):
        head(trace, -1)


def test_cacheable_only_drops_zero_and_giant(trace):
    sub = cacheable_only(trace, min_size=1, max_size=1000)
    assert len(sub) == 8
    assert (sub.sizes > 0).all()
    assert sub.sizes.max() <= 1000


def test_cacheable_only_default_keeps_positive(trace):
    assert len(cacheable_only(trace)) == 9
