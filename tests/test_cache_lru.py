"""LRU cache unit tests — the paper's replacement policy."""

import pytest

from repro.cache import LRUCache


def test_insert_and_get():
    c = LRUCache(100)
    c.put(1, 40, version=3)
    entry = c.get(1)
    assert entry is not None
    assert (entry.key, entry.size, entry.version) == (1, 40, 3)
    assert c.used == 40
    assert len(c) == 1


def test_miss_returns_none():
    c = LRUCache(100)
    assert c.get(9) is None


def test_eviction_order_is_lru():
    c = LRUCache(100)
    c.put(1, 40)
    c.put(2, 40)
    # touch 1 so 2 becomes LRU
    c.get(1)
    evicted = c.put(3, 40)
    assert evicted == [2]
    assert 1 in c and 3 in c and 2 not in c


def test_eviction_multiple_victims():
    c = LRUCache(100)
    c.put(1, 30)
    c.put(2, 30)
    c.put(3, 30)
    evicted = c.put(4, 90)
    assert evicted == [1, 2, 3]
    assert list(c) == [4]


def test_oversized_object_not_admitted():
    c = LRUCache(100)
    assert c.put(1, 101) == []
    assert 1 not in c
    assert c.used == 0


def test_exact_fit_admitted():
    c = LRUCache(100)
    c.put(1, 100)
    assert 1 in c and c.free == 0


def test_refresh_updates_size_and_version():
    c = LRUCache(100)
    c.put(1, 40, version=0)
    c.put(1, 60, version=1)
    entry = c.peek(1)
    assert entry.size == 60 and entry.version == 1
    assert c.used == 60
    assert len(c) == 1


def test_refresh_grows_beyond_capacity_evicts_others():
    c = LRUCache(100)
    c.put(1, 50)
    c.put(2, 40)
    evicted = c.put(2, 90)  # 2 refreshed to 90, 1 must go
    assert evicted == [1]
    assert list(c) == [2]


def test_refresh_oversized_drops_itself():
    c = LRUCache(100)
    c.put(1, 50)
    evicted = c.put(1, 150)
    assert evicted == [1]
    assert len(c) == 0
    assert c.used == 0


def test_peek_does_not_touch():
    c = LRUCache(100)
    c.put(1, 40)
    c.put(2, 40)
    c.peek(1)  # must NOT refresh 1
    evicted = c.put(3, 40)
    assert evicted == [1]


def test_invalidate():
    c = LRUCache(100)
    c.put(1, 40)
    assert c.invalidate(1) is True
    assert c.invalidate(1) is False
    assert c.used == 0


def test_eviction_callback_fires():
    c = LRUCache(100)
    seen = []
    c.on_evict = seen.append
    c.put(1, 60)
    c.put(2, 60)  # evicts 1
    c.invalidate(2)
    assert seen == [1, 2]


def test_clear_resets_without_callbacks():
    c = LRUCache(100)
    seen = []
    c.on_evict = seen.append
    c.put(1, 60)
    c.clear()
    assert seen == []
    assert len(c) == 0 and c.used == 0
    c.put(5, 50)
    assert 5 in c


def test_keys_by_recency():
    c = LRUCache(1000)
    for k in (1, 2, 3):
        c.put(k, 10)
    c.get(1)
    assert c.keys_by_recency() == [2, 3, 1]


def test_zero_capacity_rejects_everything():
    c = LRUCache(0)
    c.put(1, 1)
    assert len(c) == 0


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        LRUCache(-1)


def test_negative_size_rejected():
    c = LRUCache(10)
    with pytest.raises(ValueError):
        c.put(1, -5)


def test_invariants_after_mixed_ops():
    c = LRUCache(250)
    for i in range(50):
        c.put(i % 7, 10 * (i % 5 + 1), version=i)
        if i % 3 == 0:
            c.get(i % 7)
        if i % 11 == 0:
            c.invalidate((i + 1) % 7)
        c.check_invariants()
