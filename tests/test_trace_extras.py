"""Generator extras: diurnal arrival pattern; gzip log parsing; mean
response time metric."""

import gzip

import numpy as np
import pytest

from repro.core import Organization, SimulationConfig, simulate
from repro.traces.squid import parse_squid_log, write_squid_log
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace


def test_diurnal_timestamps_still_monotone_and_span():
    config = SyntheticTraceConfig(
        n_requests=20_000, n_clients=10, duration=2 * 86_400.0, diurnal_amplitude=0.8
    )
    t = generate_trace(config, seed=1)
    assert (np.diff(t.timestamps) >= 0).all()
    assert t.timestamps[0] >= 0
    assert t.timestamps[-1] == pytest.approx(2 * 86_400.0, rel=1e-6)


def test_diurnal_concentrates_load():
    flat = generate_trace(
        SyntheticTraceConfig(n_requests=30_000, n_clients=10, diurnal_amplitude=0.0),
        seed=2,
    )
    wavy = generate_trace(
        SyntheticTraceConfig(n_requests=30_000, n_clients=10, diurnal_amplitude=0.8),
        seed=2,
    )

    def hour_counts(trace):
        hours = (trace.timestamps // 3600).astype(int)
        return np.bincount(hours, minlength=24)

    cv_flat = hour_counts(flat).std() / hour_counts(flat).mean()
    cv_wavy = hour_counts(wavy).std() / hour_counts(wavy).mean()
    assert cv_wavy > 2 * cv_flat


def test_diurnal_validation():
    with pytest.raises(ValueError):
        SyntheticTraceConfig(diurnal_amplitude=1.0)
    with pytest.raises(ValueError):
        SyntheticTraceConfig(diurnal_amplitude=-0.1)


def test_gzip_squid_log_roundtrip(tmp_path, small_trace):
    plain = tmp_path / "access.log"
    write_squid_log(small_trace, plain)
    gz = tmp_path / "access.log.gz"
    gz.write_bytes(gzip.compress(plain.read_bytes()))
    back = parse_squid_log(gz, name="gz")
    assert len(back) == len(small_trace)
    assert back.n_clients == small_trace.n_clients


def test_mean_response_time_reported(small_trace):
    config = SimulationConfig.relative(small_trace, proxy_frac=0.1)
    plb = simulate(small_trace, Organization.PROXY_AND_LOCAL_BROWSER, config)
    none = simulate(
        small_trace,
        Organization.LOCAL_BROWSER_ONLY,
        SimulationConfig(proxy_capacity=0, browser_capacity=1),
    )
    assert plb.mean_response_time > 0
    # a near-cacheless configuration answers slower on average
    assert none.mean_response_time > plb.mean_response_time


def test_mean_response_time_empty():
    from repro.core.metrics import SimulationResult

    assert SimulationResult(trace_name="t", organization="o").mean_response_time == 0.0
