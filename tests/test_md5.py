"""MD5 (RFC 1321) — cross-checked against hashlib."""

import hashlib

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.index.signatures import url_signature
from repro.security.md5 import MD5, md5_digest, md5_hexdigest

# RFC 1321 appendix A.5 test suite.
RFC_VECTORS = {
    b"": "d41d8cd98f00b204e9800998ecf8427e",
    b"a": "0cc175b9c0f1b6a831c399e269772661",
    b"abc": "900150983cd24fb0d6963f7d28e17f72",
    b"message digest": "f96b697d7cb7938d525a2f31aaf161d0",
    b"abcdefghijklmnopqrstuvwxyz": "c3fcd3d76192e4007dfb496cca67e13b",
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789": (
        "d174ab98d277d9f5a5611c2c9f419d9f"
    ),
    b"1234567890" * 8: "57edf4a22be3c955ac49da2e2107b67a",
}


@pytest.mark.parametrize("message,expected", sorted(RFC_VECTORS.items()))
def test_rfc1321_vectors(message, expected):
    assert md5_hexdigest(message) == expected


def test_digest_is_16_bytes():
    assert len(md5_digest(b"anything")) == 16


def test_string_input_encodes_utf8():
    assert md5_digest("héllo") == hashlib.md5("héllo".encode()).digest()


def test_incremental_equals_oneshot():
    m = MD5()
    m.update(b"hello ")
    m.update(b"world")
    assert m.digest() == md5_digest(b"hello world")


def test_digest_idempotent_and_continuable():
    m = MD5(b"abc")
    first = m.digest()
    assert m.digest() == first
    m.update(b"def")
    assert m.digest() == hashlib.md5(b"abcdef").digest()


def test_copy_independent():
    m = MD5(b"abc")
    clone = m.copy()
    m.update(b"XYZ")
    assert clone.digest() == hashlib.md5(b"abc").digest()


def test_block_boundary_lengths():
    for n in (54, 55, 56, 57, 63, 64, 65, 119, 120, 128):
        data = bytes(range(256))[:n] * 1
        assert md5_digest(data) == hashlib.md5(data).digest(), n


def test_rejects_non_bytes():
    m = MD5()
    with pytest.raises(TypeError):
        m.update("not bytes")  # type: ignore[arg-type]


@settings(max_examples=80, deadline=None)
@given(data=st.binary(max_size=600))
def test_matches_hashlib_property(data):
    assert md5_digest(data) == hashlib.md5(data).digest()


@settings(max_examples=30, deadline=None)
@given(chunks=st.lists(st.binary(max_size=120), max_size=8))
def test_incremental_matches_hashlib_property(chunks):
    ours = MD5()
    ref = hashlib.md5()
    for chunk in chunks:
        ours.update(chunk)
        ref.update(chunk)
    assert ours.hexdigest() == ref.hexdigest()


def test_url_signature_is_md5_of_url():
    url = "http://example.com/index.html"
    assert url_signature(url) == hashlib.md5(url.encode()).digest()
    assert len(url_signature(url)) == 16
