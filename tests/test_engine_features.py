"""Engine features beyond the core paper: index-entry TTLs and
heterogeneous browser capacities."""

import numpy as np
import pytest

from repro.core import HitLocation, Organization, SimulationConfig, Simulator, simulate
from repro.traces.record import Trace


def build(rows):
    return Trace(
        timestamps=np.array([float(r[0]) for r in rows]),
        clients=np.array([r[1] for r in rows]),
        docs=np.array([r[2] for r in rows]),
        sizes=np.array([r[3] for r in rows]),
        versions=np.zeros(len(rows), dtype=np.int64),
        name="hand",
    )


# -- index entry TTL -----------------------------------------------------------


def test_fresh_index_entry_shared():
    t = build([(0.0, 0, 0, 100), (1.0, 1, 1, 200), (2.0, 1, 0, 100)])
    config = SimulationConfig(
        proxy_capacity=250, browser_capacity=1000, index_entry_ttl=10.0
    )
    r = simulate(t, Organization.BROWSERS_AWARE_PROXY, config)
    assert r.by_location[HitLocation.REMOTE_BROWSER].hits == 1


def test_expired_index_entry_not_shared():
    t = build([(0.0, 0, 0, 100), (1.0, 1, 1, 200), (500.0, 1, 0, 100)])
    config = SimulationConfig(
        proxy_capacity=250, browser_capacity=1000, index_entry_ttl=10.0
    )
    r = simulate(t, Organization.BROWSERS_AWARE_PROXY, config)
    # c0 still holds doc0, but the index entry expired at t=10
    assert r.by_location[HitLocation.REMOTE_BROWSER].hits == 0
    assert r.by_location[HitLocation.ORIGIN].misses == 3


def test_ttl_only_reduces_sharing(small_trace):
    base = SimulationConfig.relative(small_trace, proxy_frac=0.1)
    with_ttl = base.with_(index_entry_ttl=60.0)
    free = simulate(small_trace, Organization.BROWSERS_AWARE_PROXY, base)
    gated = simulate(small_trace, Organization.BROWSERS_AWARE_PROXY, with_ttl)
    assert gated.by_location_remote_hits() <= free.by_location_remote_hits()


def test_ttl_validation():
    with pytest.raises(ValueError):
        SimulationConfig(proxy_capacity=1, browser_capacity=1, index_entry_ttl=0.0)


# -- heterogeneous browser capacities -------------------------------------------


def test_per_client_capacities_applied():
    t = build([(0.0, 0, 0, 100), (1.0, 1, 1, 100)])
    config = SimulationConfig(
        proxy_capacity=1000,
        browser_capacity=0,  # ignored when capacities given
        browser_capacities=(500, 50),
    )
    sim = Simulator(t, Organization.PROXY_AND_LOCAL_BROWSER, config)
    assert sim.browsers[0].capacity == 500
    assert sim.browsers[1].capacity == 50


def test_capacities_must_cover_all_clients():
    t = build([(0.0, 0, 0, 100), (1.0, 1, 1, 100), (2.0, 2, 1, 100)])  # clients 0..2
    config = SimulationConfig(
        proxy_capacity=1000, browser_capacity=0, browser_capacities=(10, 10)
    )
    with pytest.raises(ValueError, match="covers 2 clients"):
        Simulator(t, Organization.PROXY_AND_LOCAL_BROWSER, config)


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        SimulationConfig(
            proxy_capacity=1, browser_capacity=1, browser_capacities=(10, -1)
        )


def test_zero_capacity_client_never_hits_locally():
    t = build([(0.0, 0, 0, 100), (1.0, 0, 0, 100), (2.0, 1, 0, 100), (3.0, 1, 0, 100)])
    config = SimulationConfig(
        proxy_capacity=0, browser_capacity=0, browser_capacities=(1000, 0)
    )
    r = simulate(t, Organization.LOCAL_BROWSER_ONLY, config)
    # client0 hits its own cache once; client1 (0 B) never does
    assert r.by_location[HitLocation.LOCAL_BROWSER].hits == 1


def test_heterogeneity_richer_clients_share_more(small_trace):
    """Give half the clients 4x the cache: aggregate capacity constant,
    remote sharing should still function."""
    base = SimulationConfig.relative(small_trace, proxy_frac=0.1, browser_sizing="minimum")
    n = small_trace.n_clients
    uniform = base.browser_capacity
    caps = tuple(
        int(uniform * 1.6) if i % 2 == 0 else int(uniform * 0.4) for i in range(n)
    )
    het = simulate(
        small_trace,
        Organization.BROWSERS_AWARE_PROXY,
        base.with_(browser_capacities=caps),
    )
    assert het.by_location_remote_hits() > 0
    assert 0 < het.hit_ratio < 1
