"""The streaming workload generator is bit-identical to the
materialised one.

``TraceStream`` must reproduce ``generate_trace`` exactly — same five
columns, same dtypes, same derived statistics — for the same
``(config, seed)``, regardless of chunk size, and without retaining
O(n) float columns between passes.
"""

from __future__ import annotations

import numpy as np
import pytest
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.traces import SyntheticTraceConfig, TraceStream, generate_trace, stream_trace


def assert_stream_matches(config: SyntheticTraceConfig, seed: int, chunk_rows=None):
    ref = generate_trace(config, seed=seed)
    stream = (
        TraceStream(config, seed=seed, chunk_rows=chunk_rows)
        if chunk_rows
        else TraceStream(config, seed=seed)
    )
    got = stream.materialise()
    for col in ("timestamps", "clients", "docs", "sizes", "versions"):
        a, b = getattr(ref, col), getattr(got, col)
        assert a.dtype == b.dtype, col
        np.testing.assert_array_equal(a, b, err_msg=col)
    assert stream.n_requests == len(ref)
    assert stream.n_clients == ref.n_clients
    assert stream.total_bytes == ref.total_bytes
    assert stream.mean_request_size == ref.mean_request_size
    return ref, stream


@given(
    n_requests=st.integers(1, 400),
    n_clients=st.integers(1, 30),
    seed=st.integers(0, 2**31),
    p_mutate=st.sampled_from([0.0, 0.05]),
    diurnal=st.sampled_from([0.0, 0.8]),
    embedded=st.sampled_from([0.0, 1.5]),
)
@settings(max_examples=40, deadline=None)
def test_streamed_equals_generate_trace(
    n_requests, n_clients, seed, p_mutate, diurnal, embedded
):
    config = SyntheticTraceConfig(
        n_requests=n_requests,
        n_clients=n_clients,
        p_mutate=p_mutate,
        diurnal_amplitude=diurnal,
        embedded_per_page_mean=embedded,
    )
    assert_stream_matches(config, seed)


def test_chunk_size_invariance():
    config = SyntheticTraceConfig(n_requests=2_000, n_clients=40)
    ref = generate_trace(config, seed=5)
    for chunk in (1, 7, 63, 1024, 100_000):
        got = TraceStream(config, seed=5, chunk_rows=chunk).materialise()
        for col in ("timestamps", "clients", "docs", "sizes", "versions"):
            np.testing.assert_array_equal(
                getattr(ref, col), getattr(got, col), err_msg=f"chunk={chunk} {col}"
            )


def test_repair_heavy_shape_matches():
    """n_requests=30/n_clients=25 exercises the client-planting repair
    on most seeds; the stream must replicate it draw for draw."""
    config = SyntheticTraceConfig(n_requests=30, n_clients=25)
    for seed in range(25):
        assert_stream_matches(config, seed)


def test_single_request_and_sub_client_shapes():
    assert_stream_matches(SyntheticTraceConfig(n_requests=1, n_clients=1), 0)
    assert_stream_matches(SyntheticTraceConfig(n_requests=3, n_clients=50), 2)


def test_chunks_reiterable_and_bounded():
    config = SyntheticTraceConfig(n_requests=1_500, n_clients=20)
    stream = TraceStream(config, seed=1, chunk_rows=256)
    first = [c[0].copy() for c in stream.chunks()]
    second = [c[0].copy() for c in stream.chunks()]
    assert all(np.array_equal(a, b) for a, b in zip(first, second))
    for cols in stream.chunks():
        assert len(cols) == 5
        assert all(len(col) <= 256 for col in cols)


def test_iter_rows_matches_materialised_rows():
    config = SyntheticTraceConfig(n_requests=500, n_clients=10)
    stream = TraceStream(config, seed=9, chunk_rows=128)
    assert list(stream.iter_rows()) == list(stream.materialise().iter_rows())


def test_stream_trace_helper_and_len():
    config = SyntheticTraceConfig(n_requests=64, n_clients=4)
    stream = stream_trace(config, seed=3)
    assert len(stream) == 64
    assert stream.has_dense_clients
    assert stream.duration == generate_trace(config, seed=3).duration


def test_generator_seed_rejected():
    config = SyntheticTraceConfig(n_requests=8, n_clients=2)
    with pytest.raises(TypeError):
        TraceStream(config, seed=np.random.default_rng(0))


def test_streaming_memory_below_materialised_generation():
    """Streaming retains ~8 B/request (int32 client + pair index) and
    its transient peak must stay well under ``generate_trace``'s, which
    allocates five O(n) result columns plus O(n) float temporaries."""
    import tracemalloc

    config = SyntheticTraceConfig(n_requests=120_000, n_clients=500)

    tracemalloc.start()
    try:
        trace = generate_trace(config, seed=0)
        mat_current, mat_peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    del trace

    tracemalloc.start()
    try:
        stream = TraceStream(config, seed=0, chunk_rows=4_096)
        for _ in stream.chunks():
            pass
        stream_current, stream_peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    # measured locally: ~37 MB / ~10 MB peak, ~5.5 MB / ~3.2 MB retained
    assert stream_peak < mat_peak / 2, (
        f"streaming peak {stream_peak:,} B not well below "
        f"materialised generation peak {mat_peak:,} B"
    )
    assert stream_current < mat_current, (
        f"streaming retains {stream_current:,} B, more than a "
        f"materialised trace ({mat_current:,} B)"
    )
