"""Engine correctness on hand-built traces with exactly known outcomes."""

import numpy as np
import pytest

from repro.core import HitLocation, Organization, SimulationConfig, simulate
from repro.index.staleness import PeriodicUpdatePolicy
from repro.traces.record import Trace


def build(rows, name="hand"):
    """rows: list of (client, doc, size, version)."""
    return Trace(
        timestamps=np.arange(len(rows), dtype=float),
        clients=np.array([r[0] for r in rows]),
        docs=np.array([r[1] for r in rows]),
        sizes=np.array([r[2] for r in rows]),
        versions=np.array([r[3] if len(r) > 3 else 0 for r in rows]),
        name=name,
    )


def hits_by(result):
    return {loc: result.by_location[loc].hits for loc in HitLocation}


# -- the five organizations on the tiny trace ---------------------------------


def test_proxy_only(tiny_trace, roomy_config):
    r = simulate(tiny_trace, Organization.PROXY_ONLY, roomy_config)
    h = hits_by(r)
    assert h[HitLocation.PROXY] == 3
    assert h[HitLocation.LOCAL_BROWSER] == 0
    assert h[HitLocation.REMOTE_BROWSER] == 0
    assert r.hit_ratio == pytest.approx(0.5)


def test_local_browser_only(tiny_trace, roomy_config):
    r = simulate(tiny_trace, Organization.LOCAL_BROWSER_ONLY, roomy_config)
    h = hits_by(r)
    assert h[HitLocation.LOCAL_BROWSER] == 1  # request 1 only
    assert h[HitLocation.PROXY] == 0
    assert r.hit_ratio == pytest.approx(1 / 6)


def test_global_browsers_only(tiny_trace, roomy_config):
    r = simulate(tiny_trace, Organization.GLOBAL_BROWSERS_ONLY, roomy_config)
    h = hits_by(r)
    assert h[HitLocation.LOCAL_BROWSER] == 1
    assert h[HitLocation.REMOTE_BROWSER] == 2  # requests 2 and 4
    assert r.hit_ratio == pytest.approx(0.5)


def test_global_browsers_do_not_cache_remote_fetches(roomy_config):
    # c1 fetches d0 remotely twice; without caching, both are remote hits.
    t = build([(0, 0, 100), (1, 0, 100), (1, 0, 100)])
    r = simulate(t, Organization.GLOBAL_BROWSERS_ONLY, roomy_config)
    assert r.by_location[HitLocation.REMOTE_BROWSER].hits == 2
    assert r.by_location[HitLocation.LOCAL_BROWSER].hits == 0


def test_proxy_and_local_browser(tiny_trace, roomy_config):
    r = simulate(tiny_trace, Organization.PROXY_AND_LOCAL_BROWSER, roomy_config)
    h = hits_by(r)
    assert h[HitLocation.LOCAL_BROWSER] == 1
    assert h[HitLocation.PROXY] == 2
    assert h[HitLocation.REMOTE_BROWSER] == 0
    assert r.hit_ratio == pytest.approx(0.5)


def test_baps_equals_plb_when_proxy_never_evicts(tiny_trace, roomy_config):
    baps = simulate(tiny_trace, Organization.BROWSERS_AWARE_PROXY, roomy_config)
    plb = simulate(tiny_trace, Organization.PROXY_AND_LOCAL_BROWSER, roomy_config)
    assert baps.hit_ratio == plb.hit_ratio
    assert baps.by_location[HitLocation.REMOTE_BROWSER].hits == 0


# -- the BAPS remote-hit mechanism ---------------------------------------------


def test_baps_remote_hit_after_proxy_eviction():
    # proxy too small for both docs; browser of client0 retains d0.
    t = build([(0, 0, 100), (1, 1, 200), (1, 0, 100)])
    config = SimulationConfig(proxy_capacity=250, browser_capacity=1000)
    r = simulate(t, Organization.BROWSERS_AWARE_PROXY, config)
    assert r.by_location[HitLocation.REMOTE_BROWSER].hits == 1
    assert r.by_location[HitLocation.ORIGIN].misses == 2
    # the same trace under PLB misses the third request
    plb = simulate(t, Organization.PROXY_AND_LOCAL_BROWSER, config)
    assert plb.by_location[HitLocation.ORIGIN].misses == 3


def test_baps_remote_fetch_cached_at_requester():
    t = build([(0, 0, 100), (1, 1, 200), (1, 0, 100), (1, 0, 100)])
    config = SimulationConfig(proxy_capacity=250, browser_capacity=1000)
    r = simulate(t, Organization.BROWSERS_AWARE_PROXY, config)
    # 3rd request remote hit; 4th is a local browser hit at client 1.
    assert r.by_location[HitLocation.REMOTE_BROWSER].hits == 1
    assert r.by_location[HitLocation.LOCAL_BROWSER].hits == 1


def test_baps_remote_hit_optionally_populates_proxy():
    t = build([(0, 0, 100), (1, 1, 200), (1, 0, 100), (0, 1, 200), (1, 0, 100)])
    config = SimulationConfig(
        proxy_capacity=250, browser_capacity=1000, cache_remote_hits_at_proxy=True
    )
    r = simulate(t, Organization.BROWSERS_AWARE_PROXY, config)
    # req2: remote hit (d0 from c0), proxy re-caches d0 evicting nothing
    # (d0=100 fits beside d1=200? no: 300>250, evicts d1)... regardless,
    # req4 (c1,d0) is now a local hit at c1.
    assert r.by_location[HitLocation.REMOTE_BROWSER].hits >= 1


def test_index_does_not_return_requesters_own_browser():
    # c0 evicts nothing; c0 re-requests its own doc after proxy evicted
    # it -> must be a local hit, never "remote" from itself.
    t = build([(0, 0, 100), (0, 1, 200), (0, 0, 100)])
    config = SimulationConfig(proxy_capacity=250, browser_capacity=1000)
    r = simulate(t, Organization.BROWSERS_AWARE_PROXY, config)
    assert r.by_location[HitLocation.REMOTE_BROWSER].hits == 0
    assert r.by_location[HitLocation.LOCAL_BROWSER].hits == 1


def test_index_invalidation_on_browser_eviction():
    # client0's browser can hold only one doc; d0 gets evicted before
    # client1 asks for it -> no remote hit, origin fetch.
    t = build([(0, 0, 100), (0, 1, 150), (1, 0, 100)])
    config = SimulationConfig(proxy_capacity=100, browser_capacity=150)
    # proxy holds only d0 then d1... make proxy tiny so nothing sticks:
    config = SimulationConfig(proxy_capacity=10, browser_capacity=150)
    r = simulate(t, Organization.BROWSERS_AWARE_PROXY, config)
    assert r.by_location[HitLocation.REMOTE_BROWSER].hits == 0
    assert r.index_false_hits == 0  # exact index never lies
    assert r.by_location[HitLocation.ORIGIN].misses == 3


# -- version (size-change) semantics ------------------------------------------


def test_version_change_counts_as_miss(roomy_config):
    t = build([(0, 0, 100, 0), (0, 0, 120, 1), (0, 0, 120, 1)])
    r = simulate(t, Organization.PROXY_AND_LOCAL_BROWSER, roomy_config)
    assert r.by_location[HitLocation.ORIGIN].misses == 2  # v0 fetch + v1 fetch
    assert r.by_location[HitLocation.LOCAL_BROWSER].hits == 1


def test_stale_remote_copy_not_served():
    # c0 holds v0; the world moves to v1; c1 requests v1 -> the exact
    # index (which recorded v0) must not offer c0's stale copy.
    t = build([(0, 0, 100, 0), (1, 1, 200, 0), (1, 0, 120, 1)])
    config = SimulationConfig(proxy_capacity=250, browser_capacity=1000)
    r = simulate(t, Organization.BROWSERS_AWARE_PROXY, config)
    assert r.by_location[HitLocation.REMOTE_BROWSER].hits == 0
    assert r.by_location[HitLocation.ORIGIN].misses == 3


# -- stale (periodic) index ----------------------------------------------------


def test_periodic_index_false_hit_counted():
    # c0 caches d0 then evicts it (browser too small for d1+d0); the
    # batched eviction is never flushed, so the index still names c0
    # when c1 asks -> false hit, request served by origin.
    t = build([(0, 0, 100), (0, 1, 150), (1, 0, 100)])
    config = SimulationConfig(
        proxy_capacity=10,
        browser_capacity=150,
        index_update_policy=PeriodicUpdatePolicy(threshold=1.0, min_docs=100),
    )
    r = simulate(t, Organization.BROWSERS_AWARE_PROXY, config)
    # with threshold 1.0 and min_docs=100 nothing ever flushes... then
    # the index is empty and there is no false hit, only false misses.
    assert r.by_location[HitLocation.REMOTE_BROWSER].hits == 0


def test_periodic_index_ghost_entry_false_hit():
    t = build([(0, 0, 100), (0, 1, 150), (1, 0, 100)])
    config = SimulationConfig(
        proxy_capacity=10,
        browser_capacity=150,
        # threshold tiny: the insert flushes immediately, but we hold
        # back subsequent evictions with a huge min_docs basis? No —
        # use threshold small so every change flushes except we freeze
        # after the first: simplest honest scenario below.
        index_update_policy=PeriodicUpdatePolicy(threshold=0.0),
    )
    # threshold 0.0: every change flushes instantly -> index exact,
    # so eviction IS visible and no false hit happens.
    r = simulate(t, Organization.BROWSERS_AWARE_PROXY, config)
    assert r.index_false_hits == 0


# -- metrics plumbing -----------------------------------------------------------


def test_hit_and_byte_ratio_definitions(tiny_trace, roomy_config):
    r = simulate(tiny_trace, Organization.PROXY_AND_LOCAL_BROWSER, roomy_config)
    # hits: d0(100 local) + d0(100 proxy) + d1(200 proxy) = 400 bytes
    assert r.total_bytes == 1000
    assert r.byte_hit_ratio == pytest.approx(0.4)
    assert r.hits == 3
    assert r.n_requests == 6


def test_breakdown_sums_to_hit_ratio(tiny_trace, roomy_config):
    r = simulate(tiny_trace, Organization.BROWSERS_AWARE_PROXY, roomy_config)
    assert r.breakdown().total == pytest.approx(r.hit_ratio)
    assert r.byte_breakdown().total == pytest.approx(r.byte_hit_ratio)


def test_overhead_times_accumulate(tiny_trace, roomy_config):
    r = simulate(tiny_trace, Organization.BROWSERS_AWARE_PROXY, roomy_config)
    o = r.overhead
    assert o.local_hit_time > 0
    assert o.proxy_hit_time > 0
    assert o.origin_miss_time > 0
    assert o.total_service_time > 0
    assert 0 <= o.communication_fraction <= 1


def test_organization_from_name():
    assert Organization.from_name("browsers-aware-proxy-server") is (
        Organization.BROWSERS_AWARE_PROXY
    )
    assert Organization.from_name("PROXY_ONLY") is Organization.PROXY_ONLY
    with pytest.raises(KeyError):
        Organization.from_name("nonsense")
