"""Session-based churn: the model, the process, and engine determinism."""

import dataclasses

import pytest

from repro.core import (
    ChurnModel,
    ChurnProcess,
    Organization,
    SimulationConfig,
    run_policy_sweep,
    simulate,
)
from repro.traces.profiles import small_paper_trace
from repro.util.rng import derive_seed


# -- model validation --------------------------------------------------------


def test_churn_model_defaults_75_percent_available():
    model = ChurnModel()
    assert model.availability == pytest.approx(0.75)


def test_churn_model_validation():
    with pytest.raises(ValueError):
        ChurnModel(mean_on_seconds=0.0)
    with pytest.raises(ValueError):
        ChurnModel(mean_off_seconds=-1.0)
    with pytest.raises(ValueError):
        ChurnModel(distribution="weibull")
    with pytest.raises(ValueError):
        ChurnModel(distribution="pareto", pareto_alpha=1.0)


def test_config_rejects_churn_plus_bernoulli():
    with pytest.raises(ValueError, match="not both"):
        SimulationConfig(
            proxy_capacity=100,
            browser_capacity=100,
            churn=ChurnModel(),
            holder_availability=0.5,
        )


def test_config_validates_failure_knobs():
    with pytest.raises(ValueError):
        SimulationConfig(proxy_capacity=1, browser_capacity=1, max_holder_retries=-1)
    with pytest.raises(ValueError):
        SimulationConfig(proxy_capacity=1, browser_capacity=1, corruption_rate=1.5)


# -- the process -------------------------------------------------------------


def test_process_is_deterministic():
    model = ChurnModel(mean_on_seconds=100.0, mean_off_seconds=50.0)
    a = ChurnProcess(model, seed=7)
    b = ChurnProcess(model, seed=7)
    times = [i * 13.7 for i in range(500)]
    for now in times:
        assert a.online(3, now) == b.online(3, now)


def test_process_clients_are_independent_streams():
    model = ChurnModel(mean_on_seconds=100.0, mean_off_seconds=100.0)
    proc = ChurnProcess(model, seed=0)
    states = {c: [proc.online(c, t) for t in range(0, 5000, 50)] for c in range(6)}
    # at least two clients must disagree somewhere — identical streams
    # would mean the per-client seed derivation collapsed
    assert len({tuple(s) for s in states.values()}) > 1


def test_process_toggles_and_tracks_availability():
    model = ChurnModel(mean_on_seconds=300.0, mean_off_seconds=100.0)
    proc = ChurnProcess(model, seed=11)
    samples = [proc.online(0, float(t)) for t in range(0, 200_000, 25)]
    frac_online = sum(samples) / len(samples)
    assert 0.65 < frac_online < 0.85  # stationary availability is 0.75
    # the client actually alternates rather than staying in one state
    assert any(a != b for a, b in zip(samples, samples[1:]))


def test_pareto_sessions_hit_configured_mean():
    model = ChurnModel(
        mean_on_seconds=200.0,
        mean_off_seconds=200.0,
        distribution="pareto",
        pareto_alpha=2.5,
    )
    proc = ChurnProcess(model, seed=3)
    samples = [proc.online(0, float(t)) for t in range(0, 400_000, 20)]
    frac_online = sum(samples) / len(samples)
    assert 0.3 < frac_online < 0.7  # stationary availability is 0.5


def test_per_client_seed_uses_master_seed():
    model = ChurnModel(mean_on_seconds=50.0, mean_off_seconds=50.0)
    a = ChurnProcess(model, seed=1)
    b = ChurnProcess(model, seed=2)
    sa = [a.online(0, float(t)) for t in range(0, 3000, 30)]
    sb = [b.online(0, float(t)) for t in range(0, 3000, 30)]
    assert sa != sb


# -- engine integration ------------------------------------------------------


@pytest.fixture(scope="module")
def paper_trace():
    return small_paper_trace("NLANR-uc")


@pytest.fixture(scope="module")
def base_config(paper_trace):
    return SimulationConfig.relative(
        paper_trace, proxy_frac=0.10, browser_sizing="average"
    )


def test_default_config_is_churn_free(paper_trace, base_config):
    """retries alone (no churn, no corruption) must not change anything:
    the failover loop only engages after a failed probe."""
    plain = simulate(paper_trace, Organization.BROWSERS_AWARE_PROXY, base_config)
    armed = simulate(
        paper_trace,
        Organization.BROWSERS_AWARE_PROXY,
        base_config.with_(max_holder_retries=4),
    )
    assert dataclasses.asdict(plain) == dataclasses.asdict(armed)
    assert armed.failover_attempts == 0
    assert armed.holder_unavailable == 0
    assert armed.integrity_failures == 0


def test_churn_engine_deterministic_per_seed(paper_trace, base_config):
    config = base_config.with_(churn=ChurnModel(), availability_seed=5)
    a = simulate(paper_trace, Organization.BROWSERS_AWARE_PROXY, config)
    b = simulate(paper_trace, Organization.BROWSERS_AWARE_PROXY, config)
    assert dataclasses.asdict(a) == dataclasses.asdict(b)
    assert a.holder_unavailable > 0


def test_churn_retry_budget_rescues_hits(paper_trace, base_config):
    """The PR's acceptance criterion: with churn on, a retry budget of 1
    yields at least the retry-0 hit ratio and rescues real hits."""
    churn = ChurnModel()
    r0 = simulate(
        paper_trace,
        Organization.BROWSERS_AWARE_PROXY,
        base_config.with_(churn=churn, availability_seed=42),
    )
    r1 = simulate(
        paper_trace,
        Organization.BROWSERS_AWARE_PROXY,
        base_config.with_(churn=churn, max_holder_retries=1, availability_seed=42),
    )
    assert r1.hit_ratio >= r0.hit_ratio
    assert r1.failover_rescued_hits > 0
    assert r1.failover_attempts >= r1.failover_rescued_hits


def test_churn_wasted_time_in_total(paper_trace, base_config):
    config = base_config.with_(churn=ChurnModel(), availability_seed=42)
    r = simulate(paper_trace, Organization.BROWSERS_AWARE_PROXY, config)
    assert r.holder_unavailable > 0
    lan_setup = config.lan.connection_setup
    assert r.overhead.wasted_offline_time == pytest.approx(
        r.holder_unavailable * lan_setup
    )
    # components reconcile with the wasted total, and the total is in
    # the service-time sum
    assert r.overhead.wasted_round_trip_time == pytest.approx(
        r.overhead.wasted_offline_time + r.overhead.wasted_false_hit_time
    )
    without_waste = r.overhead.total_service_time - r.overhead.wasted_round_trip_time
    assert without_waste < r.overhead.total_service_time


def test_churn_sweep_bit_identical_across_workers(small_trace):
    grids = {}
    for workers in (0, 1, 4):
        sweep = run_policy_sweep(
            small_trace,
            organizations=(
                Organization.BROWSERS_AWARE_PROXY,
                Organization.GLOBAL_BROWSERS_ONLY,
            ),
            fractions=(0.05, 0.10),
            workers=workers,
            churn=ChurnModel(),
            max_holder_retries=2,
        )
        assert not sweep.failures
        grids[workers] = {
            key: dataclasses.asdict(r) for key, r in sweep.results.items()
        }
    assert grids[0] == grids[1] == grids[4]
    rescued = sum(
        r["failover_rescued_hits"] for r in grids[0].values()
    )
    assert rescued > 0


def test_availability_seed_changes_churn_outcome(paper_trace, base_config):
    churn = ChurnModel()
    a = simulate(
        paper_trace,
        Organization.BROWSERS_AWARE_PROXY,
        base_config.with_(churn=churn, availability_seed=1),
    )
    b = simulate(
        paper_trace,
        Organization.BROWSERS_AWARE_PROXY,
        base_config.with_(churn=churn, availability_seed=2),
    )
    assert a.holder_unavailable != b.holder_unavailable


def test_derive_seed_is_stable_for_churn_cells():
    # the experiment sweep keys all retry budgets of one session length
    # to one seed; the derivation must be deterministic across runs
    assert derive_seed(0, "t", "churn-sweep", repr(1800.0)) == derive_seed(
        0, "t", "churn-sweep", repr(1800.0)
    )
