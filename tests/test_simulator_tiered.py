"""Tiered (memory/disk) simulation accounting."""

import pytest

from repro.core import HitLocation, Organization, SimulationConfig, simulate


def test_memory_byte_hit_ratio_zero_without_tiering(small_trace):
    config = SimulationConfig.relative(small_trace, proxy_frac=0.1)
    r = simulate(small_trace, Organization.PROXY_AND_LOCAL_BROWSER, config)
    assert not r.uses_memory_tier
    assert r.memory_byte_hit_ratio == 0.0
    assert r.disk_byte_hit_ratio == 0.0


def test_memory_plus_disk_equals_byte_hit_ratio(small_trace):
    config = SimulationConfig.relative(small_trace, proxy_frac=0.1, memory_fraction=0.1)
    r = simulate(small_trace, Organization.BROWSERS_AWARE_PROXY, config)
    assert r.uses_memory_tier
    assert r.memory_byte_hit_ratio + r.disk_byte_hit_ratio == pytest.approx(
        r.byte_hit_ratio
    )
    assert r.memory_byte_hit_ratio > 0


def test_larger_memory_fraction_raises_memory_hits(small_trace):
    lo = SimulationConfig.relative(small_trace, proxy_frac=0.1, memory_fraction=0.05)
    hi = SimulationConfig.relative(small_trace, proxy_frac=0.1, memory_fraction=0.8)
    r_lo = simulate(small_trace, Organization.PROXY_AND_LOCAL_BROWSER, lo)
    r_hi = simulate(small_trace, Organization.PROXY_AND_LOCAL_BROWSER, hi)
    assert r_hi.memory_byte_hit_ratio > r_lo.memory_byte_hit_ratio
    # total byte hit ratio is a capacity property, not a tier property
    assert r_hi.byte_hit_ratio == pytest.approx(r_lo.byte_hit_ratio)


def test_tiering_does_not_change_hit_ratios(small_trace):
    flat = SimulationConfig.relative(small_trace, proxy_frac=0.1)
    tiered = SimulationConfig.relative(small_trace, proxy_frac=0.1, memory_fraction=0.1)
    a = simulate(small_trace, Organization.BROWSERS_AWARE_PROXY, flat)
    b = simulate(small_trace, Organization.BROWSERS_AWARE_PROXY, tiered)
    assert a.hit_ratio == pytest.approx(b.hit_ratio)
    assert a.byte_hit_ratio == pytest.approx(b.byte_hit_ratio)


def test_memory_hits_cheaper_than_disk_hits(small_trace):
    """Total hit latency falls as the memory fraction grows."""
    lo = SimulationConfig.relative(small_trace, proxy_frac=0.1, memory_fraction=0.02)
    hi = SimulationConfig.relative(small_trace, proxy_frac=0.1, memory_fraction=0.9)
    r_lo = simulate(small_trace, Organization.PROXY_AND_LOCAL_BROWSER, lo)
    r_hi = simulate(small_trace, Organization.PROXY_AND_LOCAL_BROWSER, hi)
    assert r_hi.total_hit_latency() < r_lo.total_hit_latency()


def test_browser_memory_fraction_override(small_trace):
    base = SimulationConfig.relative(small_trace, proxy_frac=0.1, memory_fraction=0.05)
    boosted = SimulationConfig.relative(
        small_trace, proxy_frac=0.1, memory_fraction=0.05, browser_memory_fraction=1.0
    )
    a = simulate(small_trace, Organization.PROXY_AND_LOCAL_BROWSER, base)
    b = simulate(small_trace, Organization.PROXY_AND_LOCAL_BROWSER, boosted)
    # memory-resident browsers serve every local hit from memory
    assert b.memory_byte_hit_ratio > a.memory_byte_hit_ratio
    local = b.by_location[HitLocation.LOCAL_BROWSER]
    assert local.disk_hits == 0
