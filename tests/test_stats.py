"""Trace statistics (Table 1 columns) on hand-built traces."""

import numpy as np
import pytest

from repro.traces.record import Trace
from repro.traces.stats import compute_stats, first_access_mask
from repro.traces.profiles import PAPER_TRACES, get_profile, load_paper_trace


def build(docs, sizes, versions=None, clients=None):
    n = len(docs)
    return Trace(
        timestamps=np.arange(n, dtype=float),
        clients=np.array(clients or [0] * n),
        docs=np.array(docs),
        sizes=np.array(sizes),
        versions=np.array(versions or [0] * n),
        name="hand",
    )


def test_first_access_mask_simple():
    t = build(docs=[1, 2, 1, 3, 2, 1], sizes=[10] * 6)
    mask = first_access_mask(t)
    assert mask.tolist() == [True, True, False, True, False, False]


def test_first_access_mask_version_change_is_new():
    t = build(docs=[1, 1, 1], sizes=[10, 10, 12], versions=[0, 0, 1])
    assert first_access_mask(t).tolist() == [True, False, True]


def test_max_hit_ratio():
    t = build(docs=[1, 2, 1, 3, 2, 1], sizes=[10] * 6)
    st = compute_stats(t)
    assert st.max_hit_ratio == pytest.approx(0.5)  # 3 of 6 are repeats
    assert st.max_byte_hit_ratio == pytest.approx(0.5)


def test_max_byte_hit_ratio_weights_sizes():
    # big doc fetched once, small doc fetched 3 times
    t = build(docs=[1, 2, 2, 2], sizes=[1000, 10, 10, 10])
    st = compute_stats(t)
    assert st.max_hit_ratio == pytest.approx(0.5)
    assert st.max_byte_hit_ratio == pytest.approx(20 / 1030)


def test_infinite_cache_gb():
    t = build(docs=[1, 2], sizes=[500_000_000, 500_000_000])
    assert compute_stats(t).infinite_cache_gb == pytest.approx(1.0)


def test_empty_trace_stats():
    from repro.traces.record import Trace

    st = compute_stats(Trace.empty())
    assert st.n_requests == 0
    assert st.max_hit_ratio == 0.0


def test_table_row_shape():
    t = build(docs=[1], sizes=[10])
    st = compute_stats(t)
    assert len(st.as_row()) == len(st.headers())


# -- calibrated paper profiles ------------------------------------------------


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(PAPER_TRACES))
def test_paper_profiles_hit_their_targets(name):
    """The synthetic traces must match Table 1 within ~2 points."""
    profile = get_profile(name)
    st = compute_stats(load_paper_trace(name))
    assert st.max_hit_ratio == pytest.approx(profile.target_max_hit_ratio, abs=0.02)
    assert st.max_byte_hit_ratio == pytest.approx(
        profile.target_max_byte_hit_ratio, abs=0.02
    )
    assert st.n_clients == profile.config.n_clients


def test_get_profile_aliases():
    assert get_profile("nlanr-uc").name == "NLANR-uc"
    assert get_profile("bu95").name == "BU-95"
    assert get_profile("CA*netII").name == "CAnetII"
    with pytest.raises(KeyError):
        get_profile("nope")


def test_load_paper_trace_memoised():
    a = load_paper_trace("CAnetII")
    b = load_paper_trace("CAnetII")
    assert a is b
    c = load_paper_trace("CAnetII", cache=False)
    assert c is not a
    assert np.array_equal(c.docs, a.docs)
