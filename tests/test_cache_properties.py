"""Property-based tests on the cache substrate (hypothesis).

Invariants checked for every policy over arbitrary op sequences:

* tracked occupancy equals the sum of resident entry sizes,
* occupancy never exceeds capacity,
* a ``get`` after ``put`` returns the latest size/version,
* eviction callbacks fire exactly once per departed entry, and the set
  of (resident + evicted - reinserted) keys is consistent.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cache import POLICIES, TieredLRUCache, make_cache

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, 15), st.integers(0, 120), st.integers(0, 3)),
        st.tuples(st.just("get"), st.integers(0, 15)),
        st.tuples(st.just("invalidate"), st.integers(0, 15)),
    ),
    max_size=120,
)


@settings(max_examples=60, deadline=None)
@given(policy=st.sampled_from(sorted(POLICIES)), capacity=st.integers(0, 300), ops=OPS)
def test_cache_invariants_hold(policy, capacity, ops):
    cache = make_cache(policy, capacity)
    latest: dict[int, tuple[int, int]] = {}
    for op in ops:
        if op[0] == "put":
            _, key, size, version = op
            evicted = cache.put(key, size, version)
            for k in evicted:
                latest.pop(k, None)
            if key in cache:
                latest[key] = (size, version)
        elif op[0] == "get":
            _, key = op
            entry = cache.get(key)
            if key in latest:
                assert entry is not None
                assert (entry.size, entry.version) == latest[key]
            else:
                assert entry is None
        else:
            _, key = op
            removed = cache.invalidate(key)
            assert removed == (key in latest)
            latest.pop(key, None)
        cache.check_invariants()
    assert set(cache) == set(latest)
    assert cache.used == sum(s for s, _ in latest.values())


@settings(max_examples=60, deadline=None)
@given(
    capacity=st.integers(10, 400),
    mem_frac=st.floats(0.0, 1.0),
    ops=OPS,
)
def test_tiered_cache_invariants_hold(capacity, mem_frac, ops):
    cache = TieredLRUCache(capacity, mem_frac)
    latest: dict[int, tuple[int, int]] = {}
    for op in ops:
        if op[0] == "put":
            _, key, size, version = op
            evicted = cache.put(key, size, version)
            for k in evicted:
                latest.pop(k, None)
            if key in cache:
                latest[key] = (size, version)
            else:
                latest.pop(key, None)
        elif op[0] == "get":
            _, key = op
            entry, tier = cache.get(key)
            if key in latest:
                assert entry is not None and tier is not None
                assert (entry.size, entry.version) == latest[key]
            else:
                assert entry is None and tier is None
        else:
            _, key = op
            removed = cache.invalidate(key)
            assert removed == (key in latest)
            latest.pop(key, None)
        cache.check_invariants()
    assert cache.used == sum(s for s, _ in latest.values())


@settings(max_examples=40, deadline=None)
@given(ops=OPS)
def test_eviction_callback_accounting(ops):
    """Every key that leaves the cache (evict or invalidate) is reported
    exactly once while resident keys are never reported."""
    cache = make_cache("lru", 150)
    events: list[int] = []
    cache.on_evict = events.append
    inserted: set[int] = set()
    for op in ops:
        if op[0] == "put":
            _, key, size, version = op
            cache.put(key, size, version)
            if key in cache:
                inserted.add(key)
        elif op[0] == "get":
            cache.get(op[1])
        else:
            cache.invalidate(op[1])
    # resident + departed events reconcile: each departure event matches
    # a previous residency; final residents were inserted.
    for key in cache:
        assert key in inserted
