"""Unit and integration tests for :mod:`repro.core.events`."""

import numpy as np

from repro.core import HitLocation, Organization, SimulationConfig, simulate
from repro.traces.record import Trace


def test_every_location_has_stable_wire_value():
    assert {loc.value for loc in HitLocation} == {
        "local-browser",
        "proxy",
        "remote-browser",
        "sibling-proxy",
        "parent-proxy",
        "origin",
    }


def test_only_origin_is_a_miss():
    for loc in HitLocation:
        assert loc.is_hit == (loc is not HitLocation.ORIGIN)


def test_hierarchy_locations_count_as_hits():
    """Sibling/parent proxy hits belong to the hierarchy substrate but
    still count toward the paper's hit ratio definition."""
    assert HitLocation.SIBLING_PROXY.is_hit
    assert HitLocation.PARENT_PROXY.is_hit


def _sharing_trace():
    """Two clients ping-ponging two documents: produces local-browser,
    proxy, remote-browser hits and origin misses under BAPS."""
    rows = [
        (0, 1, 400, 0),
        (0, 1, 400, 0),  # local-browser hit
        (1, 1, 400, 0),  # proxy (or remote) hit for the other client
        (1, 2, 300, 0),  # miss
        (0, 2, 300, 0),
        (1, 2, 300, 0),
    ]
    return Trace(
        timestamps=np.arange(len(rows), dtype=float),
        clients=np.array([r[0] for r in rows]),
        docs=np.array([r[1] for r in rows]),
        sizes=np.array([r[2] for r in rows]),
        versions=np.array([r[3] for r in rows]),
        name="events",
    )


def test_is_hit_partitions_the_simulator_breakdown():
    """Through the Simulator: summing per-location hits over ``is_hit``
    locations must reproduce the headline hit ratio, and the ORIGIN
    bucket must hold exactly the remaining requests."""
    trace = _sharing_trace()
    config = SimulationConfig(proxy_capacity=10_000, browser_capacity=5_000)
    result = simulate(trace, Organization.BROWSERS_AWARE_PROXY, config)
    hits = sum(
        stats.hits for loc, stats in result.by_location.items() if loc.is_hit
    )
    misses = result.by_location[HitLocation.ORIGIN].misses
    assert hits + misses == result.n_requests == len(trace)
    assert result.hit_ratio == hits / len(trace)
    # the BAPS organizations never touch the hierarchy-only buckets
    assert result.by_location[HitLocation.SIBLING_PROXY].hits == 0
    assert result.by_location[HitLocation.PARENT_PROXY].hits == 0
