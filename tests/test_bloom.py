"""Bloom filter and BloomIndex tests."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.index import BloomFilter, BloomIndex
from repro.index.signatures import IndexSpaceModel


def test_added_keys_always_found():
    f = BloomFilter.for_capacity(100)
    for k in range(100):
        f.add(k)
    for k in range(100):
        assert k in f  # Bloom filters have no false negatives


def test_false_positive_rate_reasonable():
    f = BloomFilter.for_capacity(1000, bits_per_item=16)
    for k in range(1000):
        f.add(k)
    fp = sum(1 for k in range(10_000, 40_000) if k in f) / 30_000
    assert fp < 0.01  # 16 bits/item should be well under 1%


def test_empty_filter_rejects_everything():
    f = BloomFilter(1024, 8)
    assert 123 not in f
    assert f.fill_fraction() == 0.0
    assert f.false_positive_rate() == 0.0


def test_clear():
    f = BloomFilter(1024, 4)
    f.add(5)
    assert 5 in f
    f.clear()
    assert 5 not in f
    assert f.n_added == 0


def test_union():
    a = BloomFilter(1024, 4)
    b = BloomFilter(1024, 4)
    a.add(1)
    b.add(2)
    u = a.union(b)
    assert 1 in u and 2 in u


def test_union_shape_mismatch():
    with pytest.raises(ValueError):
        BloomFilter(1024, 4).union(BloomFilter(512, 4))


def test_size_bytes():
    f = BloomFilter(1024, 4)
    assert f.size_bytes == 1024 // 8


def test_fill_fraction_monotone():
    f = BloomFilter(512, 4)
    prev = 0.0
    for k in range(50):
        f.add(k)
        cur = f.fill_fraction()
        assert cur >= prev
        prev = cur


@settings(max_examples=40, deadline=None)
@given(keys=st.sets(st.integers(0, 2**62), max_size=200))
def test_no_false_negatives_property(keys):
    f = BloomFilter.for_capacity(max(len(keys), 1))
    for k in keys:
        f.add(k)
    assert all(k in f for k in keys)


def test_validation():
    with pytest.raises(ValueError):
        BloomFilter(0, 4)
    with pytest.raises(ValueError):
        BloomFilter(128, 0)
    with pytest.raises(ValueError):
        BloomFilter.for_capacity(0)


# -- BloomIndex ----------------------------------------------------------


def test_bloom_index_candidates_and_choose():
    idx = BloomIndex(n_clients=3, expected_docs_per_client=50)
    idx.add(0, 7)
    idx.add(2, 7)
    cands = idx.candidates(7, exclude_client=1)
    assert set(cands) >= {0, 2}
    assert idx.choose(7, exclude_client=1) in cands
    assert idx.choose(999_999_937, exclude_client=1) is None or True  # may FP


def test_bloom_index_excludes_requester():
    idx = BloomIndex(n_clients=2, expected_docs_per_client=50)
    idx.add(0, 7)
    assert 0 not in idx.candidates(7, exclude_client=0)


def test_bloom_index_rebuild():
    idx = BloomIndex(n_clients=1, expected_docs_per_client=50)
    idx.add(0, 7)
    idx.rebuild(0, [1, 2, 3])
    assert idx.candidates(1, exclude_client=99) == [0]


def test_bloom_index_footprint():
    idx = BloomIndex(n_clients=10, expected_docs_per_client=1000, bits_per_doc=16)
    # 10 clients x 16000 bits = 20 kB
    assert idx.footprint_bytes() == pytest.approx(20_000, rel=0.05)


# -- IndexSpaceModel (paper §5 arithmetic) ---------------------------------


def test_index_space_paper_numbers():
    m = IndexSpaceModel()  # 100 clients, 8 MB caches, 8 KB docs
    assert m.docs_per_browser == 1000
    assert m.total_docs == 100_000
    # 28 bytes per entry -> 2.8 MB, "a few MB" as the paper says
    assert m.exact_index_bytes() == 2_800_000
    # Bloom: "a storage of 2 MB is sufficient ... with a tolerant
    # inaccuracy"; at 16 bits/doc we need only 0.2 MB.
    assert m.bloom_index_bytes() == 200_000


def test_index_space_validation():
    with pytest.raises(ValueError):
        IndexSpaceModel(n_clients=0)
    m = IndexSpaceModel()
    with pytest.raises(ValueError):
        m.bloom_index_bytes(bits_per_doc=0)
