"""Multi-holder failover and integrity-failure retransmission."""

import dataclasses

import numpy as np
import pytest

from repro.core import (
    ChurnModel,
    ChurnProcess,
    HitLocation,
    Organization,
    SimulationConfig,
    simulate,
)
from repro.core.journal import result_from_jsonable, result_to_jsonable
from repro.traces.record import Trace

from tests.conftest import assert_result_roundtrips


def build(rows):
    return Trace(
        timestamps=np.arange(len(rows), dtype=float),
        clients=np.array([r[0] for r in rows]),
        docs=np.array([r[1] for r in rows]),
        sizes=np.array([r[2] for r in rows]),
        versions=np.zeros(len(rows), dtype=np.int64),
        name="hand",
    )


#: clients 0 and 1 both cache doc 0; client 2 then requests it, so the
#: index has a genuine backup replica to fail over to.
TWO_HOLDER_TRACE = build([(0, 0, 100), (1, 0, 100), (2, 0, 100)])

BAPS = Organization.BROWSERS_AWARE_PROXY


def _config(**kw):
    return SimulationConfig(proxy_capacity=1, browser_capacity=1000, **kw)


# -- failed probes charge waste ---------------------------------------------


def test_all_holders_offline_each_probe_charges_waste():
    config = _config(holder_availability=0.0, max_holder_retries=1)
    r = simulate(TWO_HOLDER_TRACE, BAPS, config)
    # request 2 probes holder 0 (no backup exists yet); request 3
    # probes holder 0 then fails over to holder 1 — all offline
    assert r.holder_unavailable == 3
    assert r.failover_attempts == 1
    assert r.failover_rescued_hits == 0
    assert r.by_location[HitLocation.REMOTE_BROWSER].hits == 0
    expected = 3 * config.lan.connection_setup
    assert r.overhead.wasted_round_trip_time == pytest.approx(expected)
    assert r.overhead.wasted_offline_time == pytest.approx(expected)


def test_retry_budget_bounds_probes():
    config = _config(holder_availability=0.0, max_holder_retries=0)
    r = simulate(TWO_HOLDER_TRACE, BAPS, config)
    assert r.holder_unavailable == 2  # one primary probe per lookup, no backups
    assert r.failover_attempts == 0


def test_failover_rescues_when_backup_online():
    """Find a churn seed where the primary holder is offline but the
    backup is online at probe time, then check the rescue end to end."""
    churn = ChurnModel(mean_on_seconds=5.0, mean_off_seconds=5.0)

    def fits(s: int) -> bool:
        # holder 0 offline for both probes (t=1 and t=2), holder 1
        # online as the backup at t=2
        p = ChurnProcess(churn, seed=s)
        return (
            not p.online(0, 1.0) and not p.online(0, 2.0) and p.online(1, 2.0)
        )

    seed = next(s for s in range(500) if fits(s))
    config = _config(churn=churn, max_holder_retries=1, availability_seed=seed)
    r = simulate(TWO_HOLDER_TRACE, BAPS, config)
    assert r.by_location[HitLocation.REMOTE_BROWSER].hits == 1
    assert r.holder_unavailable == 2
    assert r.failover_attempts == 1
    assert r.failover_rescued_hits == 1
    # the wasted probes are still charged even though the request hit
    assert r.overhead.wasted_offline_time == pytest.approx(
        2 * config.lan.connection_setup
    )
    # without the retry budget the same seed loses the hit
    r0 = simulate(TWO_HOLDER_TRACE, BAPS, config.with_(max_holder_retries=0))
    assert r0.by_location[HitLocation.REMOTE_BROWSER].hits == 0
    assert r0.hit_ratio < r.hit_ratio


# -- integrity failures ------------------------------------------------------


def test_corruption_rate_one_kills_remote_hits_and_charges_retransmission():
    config = _config(corruption_rate=1.0)
    r = simulate(TWO_HOLDER_TRACE, BAPS, config)
    assert r.by_location[HitLocation.REMOTE_BROWSER].hits == 0
    assert r.integrity_failures == 2  # one corrupted transfer per lookup
    # the discarded transfer + verify is priced by the default §6 model
    # (auto-enabled by corruption_rate > 0)
    from repro.security.protocols import SecurityOverheadModel

    per_failure = (
        config.lan.transfer_time(100) + SecurityOverheadModel().verify_cost(100)
    )
    assert r.overhead.integrity_retransmission_time == pytest.approx(2 * per_failure)
    # and it is part of the total service time
    assert r.overhead.total_service_time >= 2 * per_failure


def test_corrupt_transfer_retransmits_from_backup():
    config = _config(corruption_rate=1.0, max_holder_retries=1)
    r = simulate(TWO_HOLDER_TRACE, BAPS, config)
    # request 2's only replica and request 3's primary + backup all
    # serve corrupted transfers; every request ends at the origin
    assert r.integrity_failures == 3
    assert r.by_location[HitLocation.REMOTE_BROWSER].hits == 0
    assert r.by_location[HitLocation.ORIGIN].misses == 3


def test_explicit_security_model_prices_integrity_check():
    from repro.security.protocols import SecurityOverheadModel

    model = SecurityOverheadModel(md5_bytes_per_second=1e6, rsa_public_seconds=0.5)
    config = _config(corruption_rate=1.0, security=model)
    r = simulate(TWO_HOLDER_TRACE, BAPS, config)
    per_failure = config.lan.transfer_time(100) + model.verify_cost(100)
    assert r.overhead.integrity_retransmission_time == pytest.approx(
        r.integrity_failures * per_failure
    )
    assert r.integrity_failures == 2


def test_verify_cost_validation():
    from repro.security.protocols import SecurityOverheadModel

    model = SecurityOverheadModel()
    assert model.verify_cost(0) == pytest.approx(model.rsa_public_seconds)
    with pytest.raises(ValueError):
        model.verify_cost(-1)


# -- failover works on the bloom index too -----------------------------------


def test_bloom_index_failover():
    config = _config(
        holder_availability=0.0, max_holder_retries=1, index_kind="bloom"
    )
    r = simulate(TWO_HOLDER_TRACE, BAPS, config)
    assert r.holder_unavailable == 3
    assert r.failover_attempts == 1


# -- journal round-trip of the new counters ----------------------------------


def test_resilience_counters_roundtrip_journal():
    config = _config(holder_availability=0.0, max_holder_retries=1)
    r = simulate(TWO_HOLDER_TRACE, BAPS, config)
    # exhaustive dataclasses.fields()-driven round-trip (conftest)
    restored = assert_result_roundtrips(r)
    assert restored.failover_attempts == r.failover_attempts == 1


def test_old_journal_records_load_with_zero_counters():
    r = simulate(TWO_HOLDER_TRACE, BAPS, _config())
    data = result_to_jsonable(r)
    for key in ("failover_attempts", "failover_rescued_hits", "integrity_failures"):
        del data[key]
    restored = result_from_jsonable(data)
    assert restored.failover_attempts == 0
    assert restored.integrity_failures == 0
