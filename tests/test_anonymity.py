"""Communication anonymity (paper §6.2): relay and mix-chain tests."""

import pytest

from repro.security.anonymity import (
    AnonymityError,
    AnonymizingProxy,
    MixChain,
    PeerEndpoint,
)

DOC = b"shared browser-cache document " * 8


@pytest.fixture(scope="module")
def peers():
    return {
        "alice": PeerEndpoint.create("alice", seed=1, bits=256),
        "bob": PeerEndpoint.create("bob", seed=2, bits=256),
        "carol": PeerEndpoint.create("carol", seed=3, bits=256),
    }


def test_relay_delivers_document(peers):
    proxy = AnonymizingProxy(seed=5)
    peers["bob"].store[42] = DOC
    got = proxy.relay(peers["alice"], peers["bob"], 42)
    assert got == DOC


def test_relay_missing_document_raises(peers):
    proxy = AnonymizingProxy(seed=5)
    peers["bob"].store.pop(404, None)
    with pytest.raises(AnonymityError):
        proxy.relay(peers["alice"], peers["bob"], 404)


def test_holder_never_sees_requester_identity(peers):
    proxy = AnonymizingProxy(seed=5)
    peers["bob"].store[42] = DOC
    proxy.relay(peers["alice"], peers["bob"], 42)
    for msg in proxy.holder_view(peers["bob"]):
        # every message the holder touches involves only holder+proxy
        assert {msg.sender, msg.receiver} <= {"bob", proxy.name}
        assert b"alice" not in msg.payload


def test_requester_never_sees_holder_identity(peers):
    proxy = AnonymizingProxy(seed=5)
    peers["bob"].store[42] = DOC
    proxy.relay(peers["alice"], peers["bob"], 42)
    for msg in proxy.requester_view(peers["alice"]):
        assert {msg.sender, msg.receiver} <= {"alice", proxy.name}
        assert b"bob" not in msg.payload


def test_document_not_in_cleartext_between_holder_and_proxy(peers):
    proxy = AnonymizingProxy(seed=5)
    peers["bob"].store[42] = DOC
    proxy.relay(peers["alice"], peers["bob"], 42)
    deliver = [m for m in proxy.transcript if m.kind == "deliver"]
    forward = [m for m in proxy.transcript if m.kind == "forward"]
    assert deliver and forward
    assert DOC not in deliver[0].payload
    assert DOC not in forward[0].payload


def test_transcript_message_order(peers):
    proxy = AnonymizingProxy(seed=5)
    peers["bob"].store[42] = DOC
    proxy.relay(peers["alice"], peers["bob"], 42)
    kinds = [m.kind for m in proxy.transcript]
    assert kinds == ["request", "fetch", "deliver", "forward"]


# -- mix chain ---------------------------------------------------------------


def test_mix_chain_routes_request(peers):
    chain = MixChain(seed=9)
    hops = [peers["alice"], peers["bob"], peers["carol"]]
    out = chain.route(hops, b"GET doc 7")
    assert out == b"GET doc 7"


def test_mix_chain_single_hop(peers):
    chain = MixChain(seed=9)
    assert chain.route([peers["bob"]], b"req") == b"req"


def test_mix_chain_intermediate_sees_only_neighbours(peers):
    chain = MixChain(seed=9)
    hops = [peers["alice"], peers["bob"], peers["carol"]]
    chain.route(hops, b"GET doc 7")
    bob_msgs = [m for m in chain.transcript if m.receiver == "bob"]
    assert all(m.sender == "alice" for m in bob_msgs)
    # bob's layer names carol as next hop but the final payload is
    # opaque to bob: the request never appears in what bob receives.
    assert all(b"GET doc 7" not in m.payload for m in bob_msgs)


def test_mix_chain_wrong_hop_cannot_peel(peers):
    chain = MixChain(seed=9)
    onion = chain.build_onion([peers["alice"], peers["bob"]], b"req")
    # carol is not the first hop; peeling must fail (or mis-route)
    try:
        next_name, _ = chain.peel(peers["carol"], onion)
    except AnonymityError:
        return
    assert next_name != "bob"


def test_mix_chain_empty_hops_rejected():
    chain = MixChain(seed=9)
    with pytest.raises(AnonymityError):
        chain.build_onion([], b"req")


def test_mix_chain_truncated_onion_rejected(peers):
    chain = MixChain(seed=9)
    with pytest.raises(AnonymityError):
        chain.peel(peers["alice"], b"short")
