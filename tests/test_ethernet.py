"""Ethernet/bus model (paper §5) and latency model (paper §4.2)."""

import pytest

from repro.network import EthernetModel, MemoryDiskModel, SharedBus, WANModel
from repro.network.latency import AccessKind
from repro.network.topology import ServiceTimeModel


# -- EthernetModel ----------------------------------------------------------


def test_transfer_time_components():
    m = EthernetModel(bandwidth_bps=10e6, connection_setup=0.1)
    # 10 Mbps: 1,250,000 bytes/s
    assert m.serialization_time(1_250_000) == pytest.approx(1.0)
    assert m.transfer_time(0) == pytest.approx(0.1)
    assert m.transfer_time(1_250_000) == pytest.approx(1.1)


def test_paper_example_8kb_document():
    m = EthernetModel()
    # 8 KB over 10 Mbps = 6.55 ms wire + 100 ms setup
    assert m.transfer_time(8192) == pytest.approx(0.1 + 8192 * 8 / 10e6)


def test_ethernet_validation():
    with pytest.raises(ValueError):
        EthernetModel(bandwidth_bps=0)
    with pytest.raises(ValueError):
        EthernetModel(connection_setup=-1)
    with pytest.raises(ValueError):
        EthernetModel().serialization_time(-5)


# -- SharedBus ---------------------------------------------------------------


def test_bus_no_contention_when_idle():
    bus = SharedBus(EthernetModel(bandwidth_bps=10e6, connection_setup=0.0))
    t = bus.submit(arrival=0.0, n_bytes=1_250_000)  # 1 s service
    assert t.wait == 0.0
    assert t.finish == pytest.approx(1.0)
    t2 = bus.submit(arrival=5.0, n_bytes=1_250_000)
    assert t2.wait == 0.0


def test_bus_fcfs_contention():
    bus = SharedBus(EthernetModel(bandwidth_bps=10e6, connection_setup=0.0))
    bus.submit(arrival=0.0, n_bytes=1_250_000)  # busy until 1.0
    t2 = bus.submit(arrival=0.25, n_bytes=1_250_000)
    assert t2.start == pytest.approx(1.0)
    assert t2.wait == pytest.approx(0.75)
    assert bus.stats.total_contention_time == pytest.approx(0.75)
    assert bus.stats.contention_fraction == pytest.approx(0.75 / 2.75)


def test_bus_rejects_out_of_order_arrivals():
    bus = SharedBus()
    bus.submit(arrival=10.0, n_bytes=100)
    with pytest.raises(ValueError):
        bus.submit(arrival=5.0, n_bytes=100)


def test_bus_reset():
    bus = SharedBus()
    bus.submit(arrival=10.0, n_bytes=100)
    bus.reset()
    assert bus.stats.n_transfers == 0
    bus.submit(arrival=0.0, n_bytes=100)  # order restarts


def test_bus_stats_accumulate():
    bus = SharedBus(EthernetModel(bandwidth_bps=1e6, connection_setup=0.0))
    for i in range(5):
        bus.submit(arrival=float(i * 100), n_bytes=12_500)  # 0.1 s each
    assert bus.stats.n_transfers == 5
    assert bus.stats.total_bytes == 5 * 12_500
    assert bus.stats.total_service_time == pytest.approx(0.5)


# -- MemoryDiskModel -----------------------------------------------------------


def test_memory_time_block_granular():
    m = MemoryDiskModel()
    assert m.memory_time(16) == pytest.approx(2e-6)
    assert m.memory_time(17) == pytest.approx(4e-6)  # two blocks
    assert m.memory_time(0) == 0.0


def test_disk_time_page_granular():
    m = MemoryDiskModel()
    assert m.disk_time(4096) == pytest.approx(10e-3)
    assert m.disk_time(4097) == pytest.approx(20e-3)


def test_memory_much_faster_than_disk():
    m = MemoryDiskModel()
    size = 8192
    assert m.memory_time(size) < m.disk_time(size) / 10


def test_access_time_dispatch():
    m = MemoryDiskModel()
    assert m.access_time(100, AccessKind.MEMORY) == m.memory_time(100)
    assert m.access_time(100, AccessKind.DISK) == m.disk_time(100)
    assert m.hit_latency(100, 200) == m.memory_time(100) + m.disk_time(200)


# -- WAN / ServiceTimeModel ------------------------------------------------------


def test_wan_fetch_time():
    w = WANModel(connection_setup=0.5, bandwidth_bps=1e6)
    assert w.fetch_time(125_000) == pytest.approx(0.5 + 1.0)


def test_service_time_ordering():
    """local hit < proxy hit < remote hit < origin miss for a typical
    document — the premise of the whole caching hierarchy."""
    s = ServiceTimeModel()
    n = 8192
    local = s.local_hit(n)
    proxy = s.proxy_hit(n)
    remote = s.remote_browser_hit(n, contention=0.01)
    origin = s.origin_miss(n)
    assert local < proxy <= remote < origin


def test_remote_hit_contention_added():
    s = ServiceTimeModel()
    base = s.remote_browser_hit(1000, contention=0.0)
    assert s.remote_browser_hit(1000, contention=0.5) == pytest.approx(base + 0.5)
    with pytest.raises(ValueError):
        s.remote_browser_hit(1000, contention=-0.1)


def test_memory_hit_faster_than_disk_hit():
    s = ServiceTimeModel()
    assert s.local_hit(8192, AccessKind.MEMORY) < s.local_hit(8192, AccessKind.DISK)
