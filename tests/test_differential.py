"""Differential tests: the optimized engine vs the frozen reference.

:mod:`repro.core.simulator` replays the request path through heavily
optimized loops (inlined timing arithmetic, batched counters, direct
C-level LRU probes, inlined cache puts); :mod:`repro.core.reference`
keeps a frozen copy of the straight-line pre-optimization engine,
including frozen copies of the old cache and index implementations.
Every optimization must be *bit-identical*: for randomized traces and
configurations covering every engine knob — churn, Bernoulli
availability, failover budgets, corruption, proxy crashes,
checkpointing, re-announcement, tiered caches, bloom vs exact index,
periodic index updates, TTL'd index entries, FIFO vs LRU, consistency
policies — both engines must produce exactly equal
:class:`~repro.core.metrics.SimulationResult`\\ s, compared field for
field through :func:`dataclasses.asdict`.

The example budget follows ``HYPOTHESIS_PROFILE``: 25 examples per
test by default (fast enough for the tier-1 run), 200 under the
``ci-nightly`` profile.
"""

from __future__ import annotations

import dataclasses
import os

import hypothesis.strategies as st
import numpy as np
from hypothesis import HealthCheck, given, settings

from repro.consistency.policies import (
    AdaptiveTTLPolicy,
    AlwaysValidatePolicy,
    FixedTTLPolicy,
)
from repro.core.churn import ChurnModel
from repro.core.config import SimulationConfig
from repro.core.policies import Organization
from repro.core.proxy_faults import ProxyFaultModel
from repro.core.reference import reference_simulate
from repro.core.simulator import simulate
from repro.index.checkpoint import CheckpointPolicy
from repro.index.staleness import PeriodicUpdatePolicy
from repro.traces.record import Trace
from repro.util.profiling import ReplayProfile

settings.register_profile("default", max_examples=25, deadline=None)
settings.register_profile(
    "ci-nightly",
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@st.composite
def traces(draw):
    """Small traces with real time structure (so churn sessions, crash
    times, checkpoint intervals, and TTLs all bite) and per-document
    version bumps that change the size (the paper's size-change rule)."""
    n = draw(st.integers(10, 150))
    n_clients = draw(st.integers(2, 6))
    n_docs = draw(st.integers(2, 30))
    gaps = draw(st.lists(st.floats(0.01, 10.0), min_size=n, max_size=n))
    clients = draw(st.lists(st.integers(0, n_clients - 1), min_size=n, max_size=n))
    # Dense-id contract: the engine rejects gaps in the client id space,
    # so remap the drawn ids to 0..k-1 (ascending, like Trace.renumbered).
    remap = {c: i for i, c in enumerate(sorted(set(clients)))}
    clients = [remap[c] for c in clients]
    docs = draw(st.lists(st.integers(0, n_docs - 1), min_size=n, max_size=n))
    base_sizes = draw(st.lists(st.integers(1, 2_000), min_size=n_docs, max_size=n_docs))
    bumps = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    versions = []
    current: dict[int, int] = {}
    sizes = []
    for i in range(n):
        d = docs[i]
        v = current.get(d, 0)
        if bumps[i] and d in current:
            v += 1
        current[d] = v
        versions.append(v)
        sizes.append(base_sizes[d] + v)
    return Trace(
        timestamps=np.cumsum(gaps),
        clients=np.array(clients),
        docs=np.array(docs),
        sizes=np.array(sizes),
        versions=np.array(versions),
        name="diff",
    )


@st.composite
def configs(draw):
    """A configuration drawing every knob the engines branch on."""
    kw: dict = {
        "proxy_capacity": draw(st.integers(0, 6_000)),
        "browser_capacity": draw(st.integers(0, 1_500)),
        "proxy_policy": draw(st.sampled_from(("lru", "fifo"))),
        "browser_policy": draw(st.sampled_from(("lru", "fifo"))),
        "cache_remote_hits_at_proxy": draw(st.booleans()),
        "remote_hit_refreshes_holder": draw(st.booleans()),
        "max_holder_retries": draw(st.integers(0, 3)),
        "corruption_rate": draw(st.sampled_from((0.0, 0.1, 0.3))),
        "availability_seed": draw(st.integers(0, 2**20)),
    }
    # the tiered memory model supports only LRU caches
    if (
        kw["proxy_policy"] == "lru"
        and kw["browser_policy"] == "lru"
        and draw(st.booleans())
    ):
        kw["memory_fraction"] = draw(st.sampled_from((0.25, 0.5)))
    index_kind = draw(st.sampled_from(("exact", "bloom")))
    kw["index_kind"] = index_kind
    if index_kind == "exact" and draw(st.booleans()):
        kw["index_update_policy"] = PeriodicUpdatePolicy(
            threshold=draw(st.sampled_from((0.05, 0.2))),
            min_docs=draw(st.integers(1, 10)),
        )
    if draw(st.booleans()):
        kw["index_entry_ttl"] = draw(st.floats(1.0, 100.0))
    availability = draw(st.sampled_from(("none", "bernoulli", "churn")))
    if availability == "bernoulli":
        kw["holder_availability"] = draw(st.floats(0.3, 0.95))
    elif availability == "churn":
        kw["churn"] = ChurnModel(
            mean_on_seconds=draw(st.floats(5.0, 100.0)),
            mean_off_seconds=draw(st.floats(1.0, 50.0)),
            distribution=draw(st.sampled_from(("exponential", "pareto"))),
        )
    if draw(st.booleans()):
        crash_times = draw(
            st.lists(st.floats(1.0, 120.0), min_size=1, max_size=3, unique=True)
        )
        kw["proxy_faults"] = ProxyFaultModel(crash_times=tuple(sorted(crash_times)))
        kw["reannounce_rate"] = draw(st.sampled_from((0.5, 5.0, 50.0)))
    if draw(st.booleans()):
        kw["checkpoint"] = CheckpointPolicy(interval=draw(st.floats(5.0, 60.0)))
    consistency = draw(st.sampled_from((None, "fixed", "adaptive", "always")))
    if consistency == "fixed":
        kw["consistency"] = FixedTTLPolicy(ttl=draw(st.floats(1.0, 60.0)))
    elif consistency == "adaptive":
        kw["consistency"] = AdaptiveTTLPolicy()
    elif consistency == "always":
        kw["consistency"] = AlwaysValidatePolicy()
    # Invariant under test: federation defaulting *off* must leave the
    # single-proxy engines untouched for every sampled knob combination
    # — the frozen reference knows nothing about multi-proxy mode.
    kw["federation"] = None
    # Same invariant for the adversarial-peer and quarantine knobs: off
    # by default, and the frozen reference must keep matching — the new
    # counters stay zero on every config the reference can express.
    kw["adversarial"] = None
    kw["quarantine_threshold"] = 0
    return SimulationConfig(**kw)


ORGS = st.sampled_from(list(Organization))


@given(trace=traces(), config=configs(), org=ORGS)
def test_optimized_matches_reference(trace, config, org):
    """The optimized loops must be bit-identical to the frozen engine."""
    ref = dataclasses.asdict(reference_simulate(trace, org, config))
    opt = dataclasses.asdict(simulate(trace, org, config))
    assert opt == ref


@given(trace=traces(), config=configs(), org=ORGS)
def test_profiled_matches_reference(trace, config, org):
    """The instrumented loops add observation, never behaviour."""
    ref = dataclasses.asdict(reference_simulate(trace, org, config))
    profile = ReplayProfile()
    opt = dataclasses.asdict(simulate(trace, org, config, profile=profile))
    assert opt == ref
    assert profile.n_requests == len(trace)
    assert profile.wall_seconds > 0.0
