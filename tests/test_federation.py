"""Cooperative multi-proxy federation (repro.federation).

Covers the digest layer (build/exchange/staleness accounting), the
federated engine's request path (cross-proxy hits, digest false hits
never silently rescued, missed hits), the single-proxy bit-identity
anchor, the bloom sizing agreement between the browser index and the
inter-proxy digests, the journal round-trip of the new counters, and
the end-to-end ``baps run federation`` sweep with its bracketing
anchors.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import (
    FederationConfig,
    HitLocation,
    Organization,
    SimulationConfig,
    run_policy_sweep,
    simulate,
)
from repro.core.simulator import Simulator, bloom_expected_docs
from repro.experiments import federation as federation_experiment
from repro.federation import DigestDirectory, FederatedSimulator, build_proxy_digest
from repro.hierarchy.config import assign_proxy
from repro.traces.profiles import small_paper_trace
from repro.traces.record import Trace
from tests.conftest import assert_result_roundtrips

ORG = Organization.BROWSERS_AWARE_PROXY


def make_trace(rows, name="fed-test"):
    """rows: (t, client, doc, size, version) tuples."""
    t, c, d, s, v = zip(*rows)
    return Trace(
        timestamps=np.array(t, dtype=np.float64),
        clients=np.array(c, dtype=np.int64),
        docs=np.array(d, dtype=np.int64),
        sizes=np.array(s, dtype=np.int64),
        versions=np.array(v, dtype=np.int64),
        name=name,
    )


# -- FederationConfig / partitioning ------------------------------------------


def test_federation_config_validates():
    with pytest.raises(ValueError):
        FederationConfig(n_proxies=0)
    with pytest.raises(ValueError):
        FederationConfig(digest_period=-1.0)
    with pytest.raises(ValueError):
        FederationConfig(interproxy_bandwidth_bps=0.0)
    with pytest.raises(ValueError):
        FederationConfig(partition="stripes")


def test_federation_transfer_time_is_setup_plus_wire_time():
    fed = FederationConfig(interproxy_setup=0.01, interproxy_bandwidth_bps=8e6)
    # 1000 bytes at 8 Mbit/s = 1 ms on the wire.
    assert fed.transfer_time(1000) == pytest.approx(0.01 + 0.001)


def test_assign_proxy_partitions():
    assert [assign_proxy(c, 3, 7, "interleave") for c in range(7)] == [
        0, 1, 2, 0, 1, 2, 0,
    ]
    # blocks: ceil(7/3) = 3 clients per block, last proxy takes the tail.
    assert [assign_proxy(c, 3, 7, "blocks") for c in range(7)] == [
        0, 0, 0, 1, 1, 1, 2,
    ]
    with pytest.raises(ValueError):
        assign_proxy(0, 2, 4, "stripes")


# -- single-proxy anchor -------------------------------------------------------


def test_single_proxy_federation_bit_identical(small_trace):
    """n_proxies=1 must reproduce the plain engine exactly, field for
    field — the anchor the experiment's bracketing relies on."""
    base = SimulationConfig.relative(small_trace, 0.10, browser_sizing="minimum")
    plain = simulate(small_trace, ORG, base)
    federated = simulate(
        small_trace, ORG, base.with_(federation=FederationConfig(n_proxies=1))
    )
    assert dataclasses.asdict(federated) == dataclasses.asdict(plain)
    assert federated.interproxy_hits == 0
    assert federated.digest_bytes_exchanged == 0


@pytest.mark.parametrize("org", list(Organization))
def test_single_proxy_identity_holds_for_every_organization(small_trace, org):
    base = SimulationConfig.relative(small_trace, 0.05, browser_sizing="minimum")
    plain = simulate(small_trace, org, base)
    federated = simulate(
        small_trace, org, base.with_(federation=FederationConfig(n_proxies=1))
    )
    assert dataclasses.asdict(federated) == dataclasses.asdict(plain)


# -- digest build & exchange ---------------------------------------------------


def test_build_proxy_digest_covers_proxy_and_index_contents():
    trace = make_trace([
        (0.0, 0, 7, 100, 0),
        (1.0, 0, 8, 100, 0),
    ])
    config = SimulationConfig(proxy_capacity=10_000, browser_capacity=10_000)
    sim = Simulator(trace, ORG, config)
    sim.run()
    digest = build_proxy_digest(sim, capacity=64, bits_per_doc=16.0)
    assert 7 in digest and 8 in digest
    # the proxy holds both docs and the index claims both for client 0
    assert set(sim.index.claimed_docs()) == {7, 8}
    assert sim.index.claims_doc(7) and not sim.index.claims_doc(99)


def test_digest_exchange_respects_period_and_charges_bytes():
    # clients 0 (proxy 0) and 1 (proxy 1); requests at t=0, 50, 100
    # with a 100 s period: exchanges at t=0 and t=100 only.
    trace = make_trace([
        (0.0, 0, 1, 100, 0),
        (50.0, 1, 2, 100, 0),
        (100.0, 0, 3, 100, 0),
    ])
    fed = FederationConfig(n_proxies=2, digest_period=100.0)
    config = SimulationConfig(
        proxy_capacity=10_000, browser_capacity=10_000, federation=fed
    )
    engine = FederatedSimulator(trace, ORG, config)
    result = engine.run()
    assert engine.directory.exchanges == 2
    # each exchange: both proxies send one digest to their one peer
    per_exchange = sum(
        d.size_bytes for d in engine.directory.digests if d is not None
    )
    assert result.digest_bytes_exchanged == 2 * per_exchange
    assert result.interproxy_bandwidth_time > 0.0


def test_oracle_digest_period_charges_no_exchange_bytes():
    trace = make_trace([
        (0.0, 1, 1, 100, 0),
        (1.0, 0, 1, 100, 0),  # cross-proxy hit via live claims
    ])
    fed = FederationConfig(n_proxies=2, digest_period=0.0)
    config = SimulationConfig(
        proxy_capacity=10_000, browser_capacity=10_000, federation=fed
    )
    result = simulate(trace, ORG, config)
    assert result.interproxy_hits == 1
    assert result.digest_bytes_exchanged == 0
    assert result.digest_missed_hits == 0


# -- the cross-proxy request path ---------------------------------------------


def test_interproxy_hit_is_served_and_priced():
    # t=0: client 1 (proxy 1) fetches doc A from the origin.
    # t=100: client 1 re-hits A locally; the exchange at t=100 makes
    #        proxy 1's digest claim A.
    # t=101: client 0 (proxy 0) misses locally, digest directs it to
    #        proxy 1 — a SIBLING_PROXY hit over the inter-proxy link.
    trace = make_trace([
        (0.0, 1, 1, 100, 0),
        (100.0, 1, 1, 100, 0),
        (101.0, 0, 1, 100, 0),
    ])
    fed = FederationConfig(n_proxies=2, digest_period=100.0)
    config = SimulationConfig(
        proxy_capacity=10_000, browser_capacity=10_000, federation=fed
    )
    result = simulate(trace, ORG, config)
    assert result.interproxy_hits == 1
    assert result.hits == 2  # the local browser re-hit + the sibling hit
    assert result.interproxy_bandwidth_time >= fed.transfer_time(100)
    assert result.digest_false_hits == 0
    # the home proxy cached the cross-proxy fetch: a fourth request by
    # client 0 would now hit locally (checked via the shared ledger)
    follow_up = simulate(
        make_trace([
            (0.0, 1, 1, 100, 0),
            (100.0, 1, 1, 100, 0),
            (101.0, 0, 1, 100, 0),
            (102.0, 0, 1, 100, 0),
        ]),
        ORG,
        config,
    )
    assert follow_up.interproxy_hits == 1
    assert follow_up.hits == 3


def test_stale_digest_false_hit_is_charged_not_rescued():
    """A document evicted at the peer between exchanges: the digest
    still claims it, the probe must fail, charge
    ``wasted_false_hit_time``, and escalate to the origin — never be
    silently served from state the digest could not have known."""
    # browser_capacity 100 = one doc; proxy_capacity 100 with
    # cache_remote_hits... the proxy also holds one doc, so doc B
    # evicts A from both the browser and the proxy at the peer.
    trace = make_trace([
        (0.0, 1, 1, 100, 0),    # peer caches A (browser + proxy)
        (100.0, 1, 1, 100, 0),  # exchange at t=100: digest claims A
        (101.0, 1, 2, 100, 0),  # B evicts A everywhere at the peer
        (102.0, 0, 1, 100, 0),  # stale claim: probe fails, origin serves
    ])
    fed = FederationConfig(n_proxies=2, digest_period=100.0)
    config = SimulationConfig(
        proxy_capacity=100, browser_capacity=100, federation=fed
    )
    result = simulate(trace, ORG, config)
    assert result.digest_false_hits == 1
    assert result.interproxy_hits == 0
    assert result.overhead.wasted_false_hit_time >= fed.interproxy_setup
    # the request still completed — from the origin
    assert result.by_location[HitLocation.ORIGIN].misses == result.n_requests - result.hits


def test_stale_digest_false_hit_agrees_with_bloom_index_accounting():
    """Same eviction race with a bloom browser index at the peer: the
    per-proxy index charges its own false hit for the stale filter
    claim AND the federation charges the digest false hit — the two
    layers account the same wasted probe consistently."""
    trace = make_trace([
        (0.0, 1, 1, 100, 0),
        (100.0, 1, 1, 100, 0),
        (101.0, 1, 2, 100, 0),
        (102.0, 0, 1, 100, 0),
    ])
    fed = FederationConfig(n_proxies=2, digest_period=100.0)
    config = SimulationConfig(
        proxy_capacity=100,
        browser_capacity=100,
        index_kind="bloom",
        bloom_rebuild_threshold=1.0,  # keep the stale filter claim alive
        federation=fed,
    )
    result = simulate(trace, ORG, config)
    assert result.digest_false_hits == 1
    assert result.interproxy_hits == 0
    # the peer's own bloom index also recorded the stale-claim probe
    assert result.index_false_hits >= 1
    lan_setup = config.lan.connection_setup
    assert result.overhead.wasted_false_hit_time >= (
        fed.interproxy_setup + lan_setup
    )


def test_missed_hit_counts_content_invisible_until_next_exchange():
    # digests exchanged at t=0 (empty); the peer acquires A afterwards;
    # client 0's request at t=5 cannot see it until the next exchange.
    trace = make_trace([
        (1.0, 1, 1, 100, 0),   # peer caches A after the t=1 exchange...
        (5.0, 0, 1, 100, 0),   # ...invisible: origin serves, missed hit
    ])
    fed = FederationConfig(n_proxies=2, digest_period=1000.0)
    config = SimulationConfig(
        proxy_capacity=10_000, browser_capacity=10_000, federation=fed
    )
    result = simulate(trace, ORG, config)
    assert result.interproxy_hits == 0
    assert result.digest_missed_hits == 1
    assert result.digest_false_hits == 0


def test_blocks_partition_changes_ownership():
    # 3 clients over 2 proxies.  Interleave puts clients 0 and 1 on
    # different proxies (cross-proxy hit); blocks groups them on proxy
    # 0 (plain home-proxy hit, no inter-proxy traffic for doc 1).
    rows = [
        (0.0, 1, 1, 100, 0),
        (0.5, 2, 9, 50, 0),  # client 2 only widens the population
        (1.0, 0, 1, 100, 0),
    ]
    roomy = dict(proxy_capacity=10_000, browser_capacity=10_000)
    interleave = simulate(
        make_trace(rows), ORG,
        SimulationConfig(
            federation=FederationConfig(n_proxies=2, digest_period=0.0), **roomy
        ),
    )
    blocks = simulate(
        make_trace(rows), ORG,
        SimulationConfig(
            federation=FederationConfig(
                n_proxies=2, digest_period=0.0, partition="blocks"
            ),
            **roomy,
        ),
    )
    assert interleave.interproxy_hits == 1
    assert blocks.interproxy_hits == 0
    assert blocks.by_location[HitLocation.PROXY].hits == 1


# -- bloom sizing agreement (regression) --------------------------------------


def test_bloom_index_and_digest_share_sizing_arithmetic(small_trace):
    """``Simulator._new_index`` and the federation digest must size
    their filters from the same ``bloom_expected_docs`` arithmetic, so
    both layers budget false positives for the same claim set."""
    config = SimulationConfig.relative(
        small_trace, 0.10, browser_sizing="minimum"
    ).with_(index_kind="bloom")
    sim = Simulator(small_trace, ORG, config)
    n_clients = int(small_trace.clients.max()) + 1
    expected = bloom_expected_docs(
        small_trace, sim._browser_capacities(n_clients), config.browser_capacity
    )
    assert sim.index.expected_docs == expected

    engine = FederatedSimulator(
        small_trace, ORG,
        config.with_(federation=FederationConfig(n_proxies=2)),
    )
    members = -(-n_clients // 2)
    avg_doc = max(1, int(small_trace.sizes.mean()))
    assert engine.directory.capacity == (
        max(1, config.proxy_capacity // avg_doc) + expected * members
    )


def test_bloom_expected_docs_fallback_paths():
    empty = Trace.empty()
    assert bloom_expected_docs(empty, [], 4096) == max(8, 4096 // 1)
    trace = make_trace([(0.0, 0, 1, 100, 0)])
    assert bloom_expected_docs(trace, [1000], 0) == max(8, 1000 // 100)


# -- journal round-trip --------------------------------------------------------


def test_federated_result_roundtrips_through_journal(small_trace):
    config = SimulationConfig.relative(
        small_trace, 0.10, browser_sizing="minimum"
    ).with_(federation=FederationConfig(n_proxies=2, digest_period=600.0))
    result = simulate(small_trace, ORG, config)
    assert result.interproxy_hits > 0
    assert result.digest_bytes_exchanged > 0
    restored = assert_result_roundtrips(result)
    assert restored.interproxy_hits == result.interproxy_hits
    assert restored.digest_false_hits == result.digest_false_hits
    assert restored.digest_missed_hits == result.digest_missed_hits
    assert restored.digest_bytes_exchanged == result.digest_bytes_exchanged
    assert restored.interproxy_bandwidth_time == result.interproxy_bandwidth_time


# -- the end-to-end experiment -------------------------------------------------


@pytest.fixture(scope="module")
def federation_run():
    trace = small_paper_trace("NLANR-uc")
    return trace, federation_experiment.run(trace=trace, workers=0)


def test_experiment_single_anchor_matches_plain_sweep(federation_run):
    """The sweep's single-proxy anchor must be the existing ``baps
    run`` result for the same cell — bit-identical, not just 1e-9."""
    trace, res = federation_run
    sweep = run_policy_sweep(
        trace, organizations=(ORG,), fractions=(0.10,),
        browser_sizing="minimum",
    )
    anchor = sweep.results[(ORG, 0.10)]
    assert dataclasses.asdict(res.single_proxy) == dataclasses.asdict(anchor)
    assert abs(res.single_proxy.hit_ratio - anchor.hit_ratio) < 1e-9


def test_experiment_brackets_every_federated_cell(federation_run):
    """Every federated point lands strictly between the single-proxy
    floor and its fresh-digest oracle ceiling."""
    _, res = federation_run
    assert res.brackets_all()
    floor = res.single_proxy.hit_ratio
    for n in res.proxy_counts:
        top = res.fresh[n].hit_ratio
        assert floor < top
        for period in res.digest_periods:
            assert floor < res.cell(n, period).hit_ratio < top


def test_experiment_counters_are_exercised(federation_run):
    _, res = federation_run
    for cell in res.cells.values():
        assert cell.interproxy_hits > 0
        assert cell.digest_bytes_exchanged > 0
        assert cell.interproxy_bandwidth_time > 0.0
    # staleness must actually show up somewhere in the grid
    assert sum(c.digest_false_hits for c in res.cells.values()) > 0
    assert sum(c.digest_missed_hits for c in res.cells.values()) > 0
    # the oracle anchors exchange nothing
    for n in res.proxy_counts:
        assert res.fresh[n].digest_bytes_exchanged == 0
        assert res.fresh[n].digest_missed_hits == 0


def test_experiment_render_mentions_anchors(federation_run):
    _, res = federation_run
    table = res.render()
    assert "fresh digest" in table
    assert "single proxy" in table
