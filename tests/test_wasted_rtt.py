"""§5 wasted-round-trip accounting.

A false index hit (bloom) and an offline holder (churn) both cost one
LAN connection setup before the request escalates to the proxy/origin
path.  These events were previously counted but never priced, so
``total_service_time`` understated the workload cost and the paper's
communication fraction was slightly inflated.
"""

import pytest

from repro.consistency import FixedTTLPolicy
from repro.core import Organization, SimulationConfig, simulate

BAPS = Organization.BROWSERS_AWARE_PROXY


def wasted_events(result) -> int:
    return result.index_false_hits + result.holder_unavailable


def test_offline_holders_charge_a_setup_each(small_trace):
    config = SimulationConfig.relative(small_trace, proxy_frac=0.1).with_(
        holder_availability=0.5, availability_seed=7
    )
    r = simulate(small_trace, BAPS, config)
    assert r.holder_unavailable > 0
    assert r.index_false_hits == 0  # the exact index never false-hits
    assert r.overhead.wasted_round_trip_time == pytest.approx(
        r.holder_unavailable * config.lan.connection_setup
    )


def test_bloom_false_hits_charge_a_setup_each(small_trace):
    config = SimulationConfig.relative(small_trace, proxy_frac=0.1).with_(
        index_kind="bloom"
    )
    r = simulate(small_trace, BAPS, config)
    assert r.index_false_hits > 0
    assert r.overhead.wasted_round_trip_time == pytest.approx(
        wasted_events(r) * config.lan.connection_setup
    )


def test_coherent_path_charges_wasted_round_trips(small_trace):
    """_run_coherent has its own escalation branches; both must price
    wasted round trips the same way as the fast path."""
    config = SimulationConfig.relative(small_trace, proxy_frac=0.1).with_(
        holder_availability=0.5,
        index_kind="bloom",
        consistency=FixedTTLPolicy(3600.0),
    )
    r = simulate(small_trace, BAPS, config)
    assert r.holder_unavailable > 0 and r.index_false_hits > 0
    assert r.overhead.wasted_round_trip_time == pytest.approx(
        wasted_events(r) * config.lan.connection_setup
    )


def test_wasted_time_is_in_total_service_time(small_trace):
    config = SimulationConfig.relative(small_trace, proxy_frac=0.1).with_(
        holder_availability=0.5, availability_seed=7
    )
    r = simulate(small_trace, BAPS, config)
    o = r.overhead
    without = (
        o.local_hit_time
        + o.proxy_hit_time
        + o.remote_storage_time
        + o.remote_communication_time
        + o.origin_miss_time
        + o.security_time
        + o.validation_time
    )
    assert o.wasted_round_trip_time > 0
    assert o.total_service_time == pytest.approx(
        without + o.wasted_round_trip_time
    )


def test_no_wasted_events_means_no_wasted_time(small_trace):
    config = SimulationConfig.relative(small_trace, proxy_frac=0.1)
    r = simulate(small_trace, BAPS, config)
    assert wasted_events(r) == 0
    assert r.overhead.wasted_round_trip_time == 0.0
