"""The documented public API surface must exist and be importable."""

import importlib

import pytest

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_top_level_exports_exist():
    for name in repro.__all__:
        assert hasattr(repro, name), name


@pytest.mark.parametrize(
    "module",
    [
        "repro.core",
        "repro.traces",
        "repro.cache",
        "repro.index",
        "repro.network",
        "repro.security",
        "repro.hierarchy",
        "repro.consistency",
        "repro.prefetch",
        "repro.analysis",
        "repro.experiments",
        "repro.util",
        "repro.cli",
    ],
)
def test_subpackage_all_exports(module):
    mod = importlib.import_module(module)
    assert hasattr(mod, "__all__")
    for name in mod.__all__:
        assert hasattr(mod, name), f"{module}.{name}"


def test_readme_quickstart_runs():
    """The README quickstart snippet, verbatim (on a small trace to
    stay fast)."""
    from repro.traces import SyntheticTraceConfig, generate_trace

    trace = generate_trace(SyntheticTraceConfig(n_requests=3_000, n_clients=10), seed=0)
    config = repro.SimulationConfig.relative(trace, proxy_frac=0.10,
                                             browser_sizing="minimum")
    plb = repro.simulate(trace, repro.Organization.PROXY_AND_LOCAL_BROWSER, config)
    baps = repro.simulate(trace, repro.Organization.BROWSERS_AWARE_PROXY, config)
    assert 0 <= plb.hit_ratio <= baps.hit_ratio <= 1
    assert 0 <= baps.breakdown().remote_browser <= 1


def test_docstrings_on_public_items():
    """Every public item reachable from the top-level package carries a
    docstring (deliverable: doc comments on every public item)."""
    missing = []
    for name in repro.__all__:
        if name == "__version__":
            continue
        obj = getattr(repro, name)
        if getattr(obj, "__doc__", None) in (None, ""):
            missing.append(name)
    assert not missing, f"missing docstrings: {missing}"
