"""Client churn (holder availability) in the engine."""

import numpy as np
import pytest

from repro.core import HitLocation, Organization, SimulationConfig, simulate
from repro.traces.record import Trace


def build(rows):
    return Trace(
        timestamps=np.arange(len(rows), dtype=float),
        clients=np.array([r[0] for r in rows]),
        docs=np.array([r[1] for r in rows]),
        sizes=np.array([r[2] for r in rows]),
        versions=np.zeros(len(rows), dtype=np.int64),
        name="hand",
    )


REMOTE_TRACE = build([(0, 0, 100), (1, 1, 200), (1, 0, 100)])


def test_full_availability_default():
    config = SimulationConfig(proxy_capacity=250, browser_capacity=1000)
    r = simulate(REMOTE_TRACE, Organization.BROWSERS_AWARE_PROXY, config)
    assert r.by_location[HitLocation.REMOTE_BROWSER].hits == 1
    assert r.holder_unavailable == 0


def test_zero_availability_kills_all_remote_hits():
    config = SimulationConfig(
        proxy_capacity=250, browser_capacity=1000, holder_availability=0.0
    )
    r = simulate(REMOTE_TRACE, Organization.BROWSERS_AWARE_PROXY, config)
    assert r.by_location[HitLocation.REMOTE_BROWSER].hits == 0
    assert r.holder_unavailable == 1
    assert r.by_location[HitLocation.ORIGIN].misses == 3


def test_churn_is_deterministic_per_seed(small_trace):
    base = SimulationConfig.relative(small_trace, proxy_frac=0.1).with_(
        holder_availability=0.5, availability_seed=7
    )
    a = simulate(small_trace, Organization.BROWSERS_AWARE_PROXY, base)
    b = simulate(small_trace, Organization.BROWSERS_AWARE_PROXY, base)
    assert a.holder_unavailable == b.holder_unavailable
    assert a.hit_ratio == b.hit_ratio
    other = simulate(
        small_trace,
        Organization.BROWSERS_AWARE_PROXY,
        base.with_(availability_seed=8),
    )
    assert other.holder_unavailable != 0


def test_churn_monotone_on_real_workload(small_trace):
    base = SimulationConfig.relative(small_trace, proxy_frac=0.1)
    results = []
    for avail in (1.0, 0.5, 0.0):
        r = simulate(
            small_trace,
            Organization.BROWSERS_AWARE_PROXY,
            base.with_(holder_availability=avail),
        )
        results.append(r)
    remotes = [r.by_location_remote_hits() for r in results]
    assert remotes[0] > remotes[1] > remotes[2] == 0
    hit_ratios = [r.hit_ratio for r in results]
    assert hit_ratios == sorted(hit_ratios, reverse=True)
    # even with every holder offline, BAPS equals PLB
    plb = simulate(small_trace, Organization.PROXY_AND_LOCAL_BROWSER, base)
    assert results[-1].hit_ratio == pytest.approx(plb.hit_ratio, abs=1e-9)


def test_churn_with_consistency_mode(small_trace):
    from repro.consistency import FixedTTLPolicy

    config = SimulationConfig.relative(small_trace, proxy_frac=0.1).with_(
        holder_availability=0.5, consistency=FixedTTLPolicy(3600.0)
    )
    r = simulate(small_trace, Organization.BROWSERS_AWARE_PROXY, config)
    assert r.holder_unavailable > 0
    assert r.n_requests == len(small_trace)


def test_availability_validation():
    with pytest.raises(ValueError):
        SimulationConfig(proxy_capacity=1, browser_capacity=1, holder_availability=1.5)
