"""Property tests for sweep invariants.

Randomised over organization subsets and fraction grids (hypothesis):
``SweepResult.series()`` ordering always matches ``fractions``, every
(org, fraction) cell is present, and — LRU's stack property — the hit
ratio is monotone non-decreasing in the cache fraction on a fixed
trace.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Organization, run_policy_sweep
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace

#: small but structured: enough reuse for caches to matter, fast enough
#: for randomised sweeps (each example runs a full grid).
_TRACE = generate_trace(
    SyntheticTraceConfig(
        n_requests=1_500,
        n_clients=8,
        p_new=0.4,
        p_self=0.2,
        client_activity_alpha=0.3,
        uniform_doc_frac=0.35,
        recency_bias=0.15,
        name="prop",
    ),
    seed=13,
)

_FRACTION_PALETTE = (0.005, 0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5)

fractions_strategy = st.lists(
    st.sampled_from(_FRACTION_PALETTE), min_size=1, max_size=4, unique=True
).map(tuple)

organizations_strategy = st.lists(
    st.sampled_from(tuple(Organization)), min_size=1, max_size=3, unique=True
).map(tuple)


@settings(max_examples=10, deadline=None)
@given(organizations=organizations_strategy, fractions=fractions_strategy)
def test_sweep_grid_complete_and_series_ordered(organizations, fractions):
    sweep = run_policy_sweep(
        _TRACE, organizations=organizations, fractions=fractions, workers=0
    )
    assert not sweep.failures
    # every (org, fraction) cell is present
    assert set(sweep.results) == {
        (org, frac) for org in organizations for frac in fractions
    }
    # series() follows the caller's fraction order, whatever it was
    for org in organizations:
        series = sweep.series(org, "hit_ratio")
        assert [f for f, _ in series] == list(fractions)
        assert all(0.0 <= value <= 1.0 for _, value in series)
        # byte metric is available over the same axis
        byte_series = sweep.series(org, "byte_hit_ratio")
        assert [f for f, _ in byte_series] == list(fractions)


@settings(max_examples=10, deadline=None)
@given(
    fractions=st.lists(
        st.sampled_from(_FRACTION_PALETTE), min_size=2, max_size=5, unique=True
    ).map(lambda fs: tuple(sorted(fs)))
)
def test_lru_hit_ratio_monotone_in_cache_fraction(fractions):
    """LRU's stack property: a strictly larger cache never hits less on
    the same trace."""
    sweep = run_policy_sweep(
        _TRACE,
        organizations=(Organization.PROXY_ONLY,),
        fractions=fractions,
        proxy_policy="lru",
        workers=0,
    )
    values = [v for _, v in sweep.series(Organization.PROXY_ONLY, "hit_ratio")]
    assert all(b >= a for a, b in zip(values, values[1:])), (
        f"hit ratio not monotone over {fractions}: {values}"
    )


def test_get_unknown_key_names_available_cells(small_trace):
    sweep = run_policy_sweep(
        small_trace,
        organizations=(Organization.PROXY_ONLY,),
        fractions=(0.05, 0.2),
        workers=0,
    )
    with pytest.raises(KeyError) as exc:
        sweep.get(Organization.BROWSERS_AWARE_PROXY, 0.5)
    message = str(exc.value)
    assert "browsers-aware-proxy-server" in message  # what was asked for
    assert "proxy-cache-only" in message  # what is available
    assert "0.05" in message and "0.2" in message
    # a known organization at an unknown fraction is equally helpful
    with pytest.raises(KeyError, match="available fractions"):
        sweep.get(Organization.PROXY_ONLY, 0.07)


def test_failed_cell_get_reports_the_failure(small_trace):
    sweep = run_policy_sweep(
        small_trace,
        organizations=(Organization.PROXY_ONLY, Organization.PROXY_AND_LOCAL_BROWSER),
        fractions=(0.1,),
        workers=0,
        memory_fraction=0.5,
        proxy_policy="fifo",  # tiered model + non-LRU -> every cell raises
    )
    assert len(sweep.failures) == 2
    with pytest.raises(KeyError, match="tiered memory model"):
        sweep.get(Organization.PROXY_ONLY, 0.1)
