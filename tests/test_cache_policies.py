"""FIFO / LFU / SIZE / GDSF replacement-policy behaviour."""

import pytest

from repro.cache import (
    FIFOCache,
    GDSFCache,
    LFUCache,
    POLICIES,
    SizeCache,
    make_cache,
)


# -- FIFO ------------------------------------------------------------------


def test_fifo_ignores_accesses():
    c = FIFOCache(100)
    c.put(1, 40)
    c.put(2, 40)
    c.get(1)  # must not rescue 1
    evicted = c.put(3, 40)
    assert evicted == [1]


def test_fifo_evicts_in_insertion_order():
    c = FIFOCache(120)
    for k in (1, 2, 3):
        c.put(k, 40)
    assert c.put(4, 80) == [1, 2]


# -- LFU -------------------------------------------------------------------


def test_lfu_evicts_least_frequent():
    c = LFUCache(100)
    c.put(1, 40)
    c.put(2, 40)
    c.get(1)
    c.get(1)
    evicted = c.put(3, 40)
    assert evicted == [2]
    assert c.frequency(1) == 3  # insert + two gets


def test_lfu_tie_breaks_toward_older():
    c = LFUCache(100)
    c.put(1, 40)
    c.put(2, 40)
    # both have frequency 1; 1 is older
    assert c.put(3, 40) == [1]


def test_lfu_frequency_resets_on_reinsert_after_eviction():
    c = LFUCache(80)
    c.put(1, 40)
    for _ in range(5):
        c.get(1)
    c.put(2, 40)
    c.put(3, 40)  # evicts 2 (freq 1) not 1 (freq 6)
    assert 1 in c and 2 not in c
    c.invalidate(1)
    c.put(1, 40)
    assert c.frequency(1) == 1


def test_lfu_stale_heap_records_skipped():
    c = LFUCache(120)
    c.put(1, 40)
    for _ in range(10):
        c.get(1)  # many stale heap records for key 1
    c.put(2, 40)
    c.put(3, 40)
    assert c.put(4, 40) == [2]  # oldest freq-1, not key 1


# -- SIZE ------------------------------------------------------------------


def test_size_evicts_largest_first():
    c = SizeCache(100)
    c.put(1, 10)
    c.put(2, 60)
    c.put(3, 30)
    evicted = c.put(4, 40)  # need 40 bytes -> evict 2 (largest)
    assert evicted == [2]
    assert 1 in c and 3 in c and 4 in c


def test_size_handles_resize_on_refresh():
    c = SizeCache(100)
    c.put(1, 60)
    c.put(2, 30)
    c.put(1, 10, version=1)  # 1 shrinks; 2 now the largest
    evicted = c.put(3, 70)
    assert evicted == [2]


# -- GDSF ------------------------------------------------------------------


def test_gdsf_prefers_evicting_large_cold_objects():
    c = GDSFCache(1000)
    c.put(1, 900)  # large, cold
    c.put(2, 50)
    c.get(2)
    evicted = c.put(3, 100)
    assert evicted == [1]


def test_gdsf_frequency_protects_objects():
    c = GDSFCache(200)
    c.put(1, 100)
    for _ in range(20):
        c.get(1)
    c.put(2, 100)
    # inserting 3 must evict the cold 2, not the hot 1
    assert c.put(3, 100) == [2]


def test_gdsf_clock_ages_cache():
    c = GDSFCache(100)
    c.put(1, 50)
    c.put(2, 50)
    c.put(3, 50)  # evicts one, raising the clock
    assert c._clock > 0.0


# -- registry ---------------------------------------------------------------


def test_make_cache_registry():
    for name, cls in POLICIES.items():
        cache = make_cache(name, 100)
        assert isinstance(cache, cls)
        assert cache.policy == name


def test_make_cache_unknown_policy():
    with pytest.raises(KeyError, match="unknown policy"):
        make_cache("mru", 100)


@pytest.mark.parametrize("policy", sorted(POLICIES))
def test_all_policies_respect_capacity(policy):
    c = make_cache(policy, 500)
    for i in range(200):
        c.put(i % 23, (i * 37) % 90 + 10, version=i)
        if i % 2:
            c.get((i * 3) % 23)
        c.check_invariants()
    assert c.used <= 500
