"""Direct unit tests for result/overhead bookkeeping."""

import pytest

from repro.cache.stats import CacheStats
from repro.core.events import HitLocation
from repro.core.metrics import HitBreakdown, SimulationResult
from repro.core.overhead import OverheadReport
from repro.network.ethernet import BusStats


# -- CacheStats ----------------------------------------------------------------


def test_cache_stats_counting():
    s = CacheStats()
    s.record_hit(100)
    s.record_miss(50)
    s.record_tier_hit(30, memory=True)
    s.record_tier_hit(20, memory=False)
    assert s.requests == 4
    assert s.hits == 3 and s.misses == 1
    assert s.hit_bytes == 150
    assert s.memory_hits == 1 and s.disk_hits == 1
    assert s.hit_ratio == pytest.approx(0.75)
    assert s.byte_hit_ratio == pytest.approx(150 / 200)


def test_cache_stats_empty_ratios():
    s = CacheStats()
    assert s.hit_ratio == 0.0
    assert s.byte_hit_ratio == 0.0


def test_cache_stats_merged():
    a = CacheStats(hits=1, misses=2, hit_bytes=10, miss_bytes=20, memory_hits=1)
    b = CacheStats(hits=3, misses=4, hit_bytes=30, miss_bytes=40, disk_hits=2)
    m = a.merged(b)
    assert (m.hits, m.misses, m.hit_bytes, m.miss_bytes) == (4, 6, 40, 60)
    assert (m.memory_hits, m.disk_hits) == (1, 2)


# -- SimulationResult --------------------------------------------------------------


def test_result_recording_and_ratios():
    r = SimulationResult(trace_name="t", organization="o")
    r.record(HitLocation.LOCAL_BROWSER, 100)
    r.record(HitLocation.PROXY, 200)
    r.record(HitLocation.REMOTE_BROWSER, 300)
    r.record(HitLocation.ORIGIN, 400)
    assert r.n_requests == 4
    assert r.hits == 3
    assert r.hit_ratio == pytest.approx(0.75)
    assert r.byte_hit_ratio == pytest.approx(600 / 1000)
    assert r.by_location_remote_hits() == 1


def test_result_tier_recording():
    r = SimulationResult(trace_name="t", organization="o")
    r.record(HitLocation.PROXY, 100, memory=True)
    r.record(HitLocation.LOCAL_BROWSER, 100, memory=False)
    r.record(HitLocation.ORIGIN, 100)
    assert r.memory_byte_hit_ratio == pytest.approx(100 / 300)
    assert r.disk_byte_hit_ratio == pytest.approx(100 / 300)


def test_breakdown_percentages():
    bd = HitBreakdown(local_browser=0.1, proxy=0.2, remote_browser=0.05)
    assert bd.total == pytest.approx(0.35)
    pct = bd.as_percentages()
    assert pct["remote-browsers"] == pytest.approx(5.0)


def test_result_summary_keys():
    r = SimulationResult(trace_name="t", organization="o")
    r.record(HitLocation.PROXY, 10)
    s = r.summary()
    assert set(s) == {
        "hit_ratio",
        "byte_hit_ratio",
        "local_share",
        "proxy_share",
        "remote_share",
        "communication_fraction",
    }


def test_empty_result_ratios():
    r = SimulationResult(trace_name="t", organization="o")
    assert r.hit_ratio == 0.0
    assert r.memory_byte_hit_ratio == 0.0
    assert r.breakdown().total == 0.0


# -- OverheadReport --------------------------------------------------------------------


def test_overhead_totals_and_fractions():
    o = OverheadReport(
        local_hit_time=1.0,
        proxy_hit_time=2.0,
        remote_transfer_time=3.0,
        remote_contention_time=1.0,
        remote_storage_time=0.5,
        origin_miss_time=10.0,
        security_time=0.5,
        validation_time=2.0,
    )
    assert o.remote_communication_time == pytest.approx(4.0)
    assert o.total_service_time == pytest.approx(20.0)
    assert o.communication_fraction == pytest.approx(4.0 / 20.0)
    assert o.contention_fraction_of_communication == pytest.approx(0.25)
    assert o.security_fraction_of_communication == pytest.approx(0.125)


def test_overhead_zero_guards():
    o = OverheadReport()
    assert o.communication_fraction == 0.0
    assert o.contention_fraction_of_communication == 0.0
    assert o.security_fraction_of_communication == 0.0


def test_overhead_absorb_bus():
    o = OverheadReport()
    o.absorb_bus(BusStats(total_service_time=5.0, total_contention_time=1.5))
    assert o.remote_transfer_time == 5.0
    assert o.remote_contention_time == 1.5
