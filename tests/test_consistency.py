"""Expiration-based consistency: policies and engine integration."""

import numpy as np
import pytest

from repro.consistency import (
    AdaptiveTTLPolicy,
    AlwaysValidatePolicy,
    ConsistencyStats,
    FixedTTLPolicy,
)
from repro.core import HitLocation, Organization, SimulationConfig, simulate
from repro.traces.record import Trace


def build(rows):
    """rows: (t, client, doc, size, version)."""
    return Trace(
        timestamps=np.array([float(r[0]) for r in rows]),
        clients=np.array([r[1] for r in rows]),
        docs=np.array([r[2] for r in rows]),
        sizes=np.array([r[3] for r in rows]),
        versions=np.array([r[4] if len(r) > 4 else 0 for r in rows]),
        name="hand",
    )


# -- policies -----------------------------------------------------------------


def test_fixed_ttl():
    p = FixedTTLPolicy(ttl=100.0)
    assert p.expires_at(50.0, 0.0) == 150.0
    assert "fixed-ttl" in p.name()
    with pytest.raises(ValueError):
        FixedTTLPolicy(ttl=-1)


def test_adaptive_ttl_scales_with_age():
    p = AdaptiveTTLPolicy(factor=0.5, min_ttl=10.0, max_ttl=1000.0)
    # young document: clamped to min
    assert p.expires_at(now=100.0, last_modified=99.0) == pytest.approx(110.0)
    # old document: half its age
    assert p.expires_at(now=1000.0, last_modified=0.0) == pytest.approx(1500.0)
    # ancient document: clamped to max
    assert p.expires_at(now=10_000.0, last_modified=0.0) == pytest.approx(11_000.0)


def test_adaptive_ttl_validation():
    with pytest.raises(ValueError):
        AdaptiveTTLPolicy(factor=1.5)
    with pytest.raises(ValueError):
        AdaptiveTTLPolicy(min_ttl=100, max_ttl=10)


def test_always_validate():
    p = AlwaysValidatePolicy()
    assert p.expires_at(42.0, 0.0) == 42.0


def test_stats_ratio():
    s = ConsistencyStats(validations=4, validated_hits=3)
    assert s.validation_hit_ratio == 0.75
    assert ConsistencyStats().validation_hit_ratio == 0.0


# -- engine integration ------------------------------------------------------------


def _config(policy, **kw):
    return SimulationConfig(
        proxy_capacity=100_000, browser_capacity=100_000, consistency=policy, **kw
    )


def test_fresh_copy_served_without_validation():
    t = build([(0, 0, 1, 100, 0), (10, 0, 1, 100, 0)])
    r = simulate(t, Organization.PROXY_AND_LOCAL_BROWSER, _config(FixedTTLPolicy(100.0)))
    assert r.by_location[HitLocation.LOCAL_BROWSER].hits == 1
    assert r.consistency_stats.validations == 0


def test_stale_delivery_counted():
    # version changes at t=10, but the copy is still fresh-by-TTL at
    # t=20 -> served anyway, counted as a stale delivery.
    t = build([(0, 0, 1, 100, 0), (20, 0, 1, 120, 1)])
    r = simulate(t, Organization.PROXY_AND_LOCAL_BROWSER, _config(FixedTTLPolicy(100.0)))
    assert r.by_location[HitLocation.LOCAL_BROWSER].hits == 1
    assert r.consistency_stats.stale_deliveries == 1
    assert r.consistency_stats.stale_bytes == 120


def test_expired_copy_validates_then_hits():
    t = build([(0, 0, 1, 100, 0), (200, 0, 1, 100, 0)])
    r = simulate(t, Organization.PROXY_AND_LOCAL_BROWSER, _config(FixedTTLPolicy(100.0)))
    cs = r.consistency_stats
    assert cs.validations == 1
    assert cs.validated_hits == 1
    assert r.by_location[HitLocation.LOCAL_BROWSER].hits == 1
    assert r.overhead.validation_time > 0


def test_expired_changed_copy_goes_to_origin():
    t = build([(0, 0, 1, 100, 0), (200, 0, 1, 120, 1)])
    r = simulate(t, Organization.PROXY_AND_LOCAL_BROWSER, _config(FixedTTLPolicy(100.0)))
    cs = r.consistency_stats
    assert cs.validations == 1
    assert cs.validation_misses == 1
    assert r.by_location[HitLocation.ORIGIN].misses == 2
    assert r.hit_ratio == 0.0


def test_validation_refreshes_ttl():
    # validate at t=200, then a hit at t=250 is inside the renewed TTL
    t = build([(0, 0, 1, 100, 0), (200, 0, 1, 100, 0), (250, 0, 1, 100, 0)])
    r = simulate(t, Organization.PROXY_AND_LOCAL_BROWSER, _config(FixedTTLPolicy(100.0)))
    assert r.consistency_stats.validations == 1
    assert r.hits == 2


def test_always_validate_never_stale():
    t = build([(0, 0, 1, 100, 0), (20, 0, 1, 120, 1), (40, 0, 1, 120, 1)])
    r = simulate(t, Organization.PROXY_AND_LOCAL_BROWSER, _config(AlwaysValidatePolicy()))
    cs = r.consistency_stats
    assert cs.stale_deliveries == 0
    assert cs.validations == 2  # every re-access validates
    assert r.hits == 1  # only the final (unchanged) access hits


def test_remote_browser_hits_stay_exact():
    # proxy too small to hold doc after the second fetch; remote hit
    # still requires an exact version match under consistency mode.
    t = build([(0, 0, 1, 100, 0), (1, 1, 2, 200, 0), (2, 1, 1, 100, 0)])
    config = SimulationConfig(
        proxy_capacity=250,
        browser_capacity=100_000,
        consistency=FixedTTLPolicy(1_000.0),
    )
    r = simulate(t, Organization.BROWSERS_AWARE_PROXY, config)
    assert r.by_location[HitLocation.REMOTE_BROWSER].hits == 1
    assert r.consistency_stats.stale_deliveries == 0


def test_default_mode_unchanged(small_trace):
    """consistency=None must reproduce the original engine exactly."""
    base = SimulationConfig.relative(small_trace, proxy_frac=0.1)
    r = simulate(small_trace, Organization.BROWSERS_AWARE_PROXY, base)
    assert r.consistency_stats.validations == 0
    assert r.consistency_stats.stale_deliveries == 0
    assert r.overhead.validation_time == 0.0


def test_consistency_tradeoff_on_real_workload(small_trace):
    """Longer TTLs trade validations for stale deliveries."""
    base = SimulationConfig.relative(small_trace, proxy_frac=0.1)
    short = simulate(
        small_trace,
        Organization.PROXY_AND_LOCAL_BROWSER,
        base.with_(consistency=FixedTTLPolicy(60.0)),
    )
    long_ = simulate(
        small_trace,
        Organization.PROXY_AND_LOCAL_BROWSER,
        base.with_(consistency=FixedTTLPolicy(86_400.0)),
    )
    assert short.consistency_stats.validations > long_.consistency_stats.validations
    assert (
        short.consistency_stats.stale_deliveries
        <= long_.consistency_stats.stale_deliveries
    )


def test_adaptive_ttl_on_real_workload(small_trace):
    base = SimulationConfig.relative(small_trace, proxy_frac=0.1)
    r = simulate(
        small_trace,
        Organization.PROXY_AND_LOCAL_BROWSER,
        base.with_(consistency=AdaptiveTTLPolicy()),
    )
    # everything accounted: hits + misses == requests, and the
    # validation machinery actually engaged
    assert r.n_requests == len(small_trace)
    assert r.consistency_stats.validations > 0
