"""Sweep and scaling experiment drivers on the small trace."""

import pytest

from repro.core import Organization, run_policy_sweep, run_scaling_experiment, run_size_sweep
from repro.core.sweep import PAPER_SIZE_FRACTIONS


def test_policy_sweep_covers_grid(small_trace):
    orgs = (Organization.PROXY_ONLY, Organization.BROWSERS_AWARE_PROXY)
    sweep = run_policy_sweep(small_trace, organizations=orgs, fractions=(0.05, 0.2))
    assert len(sweep.results) == 4
    r = sweep.get(Organization.PROXY_ONLY, 0.05)
    assert 0 < r.hit_ratio < 1


def test_sweep_series_ordering(small_trace):
    sweep = run_size_sweep(
        small_trace, Organization.PROXY_AND_LOCAL_BROWSER, fractions=(0.02, 0.1, 0.3)
    )
    series = sweep.series(Organization.PROXY_AND_LOCAL_BROWSER, "hit_ratio")
    fracs = [f for f, _ in series]
    values = [v for _, v in series]
    assert fracs == [0.02, 0.1, 0.3]
    assert values == sorted(values)  # bigger cache, better hit ratio


def test_sweep_table_renders(small_trace):
    sweep = run_size_sweep(small_trace, Organization.PROXY_ONLY, fractions=(0.05,))
    text = sweep.table("hit_ratio")
    assert "proxy-cache-only" in text
    assert "5%" in text


def test_paper_fractions_constant():
    assert PAPER_SIZE_FRACTIONS == (0.005, 0.05, 0.10, 0.20)


def test_scaling_experiment(small_trace):
    result = run_scaling_experiment(
        small_trace, client_fractions=(0.5, 1.0), proxy_frac=0.10
    )
    assert len(result.points) == 2
    full = result.points[-1]
    assert full.client_fraction == 1.0
    assert full.n_clients == small_trace.n_clients
    assert full.hit_ratio_baps >= full.hit_ratio_plb
    # increments defined relative to PLB
    inc = result.increments("hit_ratio")
    assert inc[-1][1] == pytest.approx(
        (full.hit_ratio_baps - full.hit_ratio_plb) / full.hit_ratio_plb
    )


def test_scaling_monotonic_check(small_trace):
    result = run_scaling_experiment(
        small_trace, client_fractions=(0.25, 0.5, 0.75, 1.0), proxy_frac=0.10
    )
    # with generous slack the check must pass on this trace; the strict
    # paper-scale assertion lives in the benchmarks
    assert result.is_monotonic("hit_ratio", slack=0.05)


def test_scaling_table_renders(small_trace):
    result = run_scaling_experiment(small_trace, client_fractions=(1.0,))
    assert "client scaling" in result.table()


def test_zero_plb_increment_guard():
    from repro.core.scaling import ScalingPoint

    p = ScalingPoint(
        client_fraction=1.0,
        n_clients=1,
        n_requests=1,
        hit_ratio_plb=0.0,
        hit_ratio_baps=0.5,
        byte_hit_ratio_plb=0.0,
        byte_hit_ratio_baps=0.5,
    )
    assert p.hit_ratio_increment == 0.0
    assert p.byte_hit_ratio_increment == 0.0
