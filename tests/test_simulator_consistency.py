"""Cross-organization invariants on a realistic synthetic trace.

These encode the paper's qualitative claims as machine-checked
properties of the simulator.
"""

import pytest

from repro.core import Organization, SimulationConfig, simulate
from repro.traces.stats import compute_stats


@pytest.fixture(scope="module")
def results(request):
    small_trace = request.getfixturevalue("small_trace")
    config = SimulationConfig.relative(small_trace, proxy_frac=0.10, browser_sizing="minimum")
    return {
        org: simulate(small_trace, org, config) for org in Organization
    }


def test_baps_dominates_all_other_organizations(results):
    baps = results[Organization.BROWSERS_AWARE_PROXY]
    for org, r in results.items():
        if org is Organization.BROWSERS_AWARE_PROXY:
            continue
        assert baps.hit_ratio >= r.hit_ratio - 1e-12, org
        assert baps.byte_hit_ratio >= r.byte_hit_ratio - 1e-12, org


def test_baps_strictly_beats_plb(results):
    baps = results[Organization.BROWSERS_AWARE_PROXY]
    plb = results[Organization.PROXY_AND_LOCAL_BROWSER]
    assert baps.hit_ratio > plb.hit_ratio
    assert baps.by_location_remote_hits() > 0


def test_plb_at_least_proxy_only(results):
    assert (
        results[Organization.PROXY_AND_LOCAL_BROWSER].hit_ratio
        >= results[Organization.PROXY_ONLY].hit_ratio - 0.01
    )


def test_local_only_is_lowest(results):
    local = results[Organization.LOCAL_BROWSER_ONLY]
    for org, r in results.items():
        if org is Organization.LOCAL_BROWSER_ONLY:
            continue
        assert local.hit_ratio <= r.hit_ratio + 1e-12, org


def test_global_browsers_beats_local_only(results):
    assert (
        results[Organization.GLOBAL_BROWSERS_ONLY].hit_ratio
        > results[Organization.LOCAL_BROWSER_ONLY].hit_ratio
    )


def test_no_result_exceeds_max_hit_ratio(results, small_trace):
    st = compute_stats(small_trace)
    for org, r in results.items():
        assert r.hit_ratio <= st.max_hit_ratio + 1e-9, org
        assert r.byte_hit_ratio <= st.max_byte_hit_ratio + 1e-9, org


def test_request_and_byte_totals_conserved(results, small_trace):
    for org, r in results.items():
        assert r.n_requests == len(small_trace), org
        assert r.total_bytes == small_trace.total_bytes, org


def test_exact_index_never_false_hits(results):
    assert results[Organization.BROWSERS_AWARE_PROXY].index_false_hits == 0


def test_bigger_caches_do_not_hurt(small_trace):
    lo = SimulationConfig.relative(small_trace, proxy_frac=0.02, browser_sizing="minimum")
    hi = SimulationConfig.relative(small_trace, proxy_frac=0.30, browser_sizing="minimum")
    for org in (Organization.PROXY_AND_LOCAL_BROWSER, Organization.BROWSERS_AWARE_PROXY):
        r_lo = simulate(small_trace, org, lo)
        r_hi = simulate(small_trace, org, hi)
        assert r_hi.hit_ratio > r_lo.hit_ratio, org


def test_deterministic_simulation(small_trace):
    config = SimulationConfig.relative(small_trace, proxy_frac=0.10)
    a = simulate(small_trace, Organization.BROWSERS_AWARE_PROXY, config)
    b = simulate(small_trace, Organization.BROWSERS_AWARE_PROXY, config)
    assert a.hit_ratio == b.hit_ratio
    assert a.byte_hit_ratio == b.byte_hit_ratio
    assert a.overhead.total_service_time == b.overhead.total_service_time


def test_remote_hits_ride_the_shared_bus(small_trace):
    config = SimulationConfig.relative(small_trace, proxy_frac=0.10)
    r = simulate(small_trace, Organization.BROWSERS_AWARE_PROXY, config)
    remote = r.by_location_remote_hits()
    if remote:
        assert r.overhead.remote_transfer_time > 0
        # setup time alone gives a lower bound
        assert r.overhead.remote_transfer_time >= remote * config.lan.connection_setup
