"""End-to-end secure transfer protocol and the §6 overhead model."""

import pytest

from repro.security.anonymity import PeerEndpoint
from repro.security.protocols import SecureTransferProtocol, SecurityOverheadModel
from repro.security.watermark import WatermarkError

DOC = b"<html>a very reusable document</html>" * 20


@pytest.fixture()
def setup():
    protocol = SecureTransferProtocol(seed=77)
    holder = PeerEndpoint.create("holder", seed=1, bits=256)
    requester = PeerEndpoint.create("requester", seed=2, bits=256)
    protocol.publish(holder, 7, DOC)
    return protocol, holder, requester


def test_publish_stores_and_watermarks(setup):
    protocol, holder, _ = setup
    assert holder.store[7] == DOC
    mark = protocol.publish(holder, 8, b"another")
    assert len(mark.digest) == 16


def test_transfer_roundtrip(setup):
    protocol, holder, requester = setup
    doc, record = protocol.transfer(requester, holder, 7)
    assert doc == DOC
    assert record.verified
    assert record.doc_bytes == len(DOC)
    assert record.crypto_seconds > 0


def test_transfer_detects_tampering(setup):
    protocol, holder, requester = setup
    holder.store[7] = DOC[:-4] + b"EVIL"
    with pytest.raises(WatermarkError):
        protocol.transfer(requester, holder, 7)


def test_transfer_unpublished_doc(setup):
    protocol, holder, requester = setup
    with pytest.raises(KeyError):
        protocol.transfer(requester, holder, 404)


# -- overhead model -----------------------------------------------------------


def test_transfer_cost_scales_with_size():
    m = SecurityOverheadModel()
    assert m.transfer_cost(100_000) > m.transfer_cost(1_000) > 0


def test_transfer_cost_has_fixed_rsa_floor():
    m = SecurityOverheadModel()
    floor = 2 * m.rsa_private_seconds + 3 * m.rsa_public_seconds
    assert m.transfer_cost(0) == pytest.approx(floor)


def test_transfer_cost_components():
    m = SecurityOverheadModel(
        md5_bytes_per_second=1e6,
        des_bytes_per_second=1e6,
        rsa_private_seconds=0.0,
        rsa_public_seconds=0.0,
    )
    # 2 MD5 passes + 4 DES passes over 1 MB at 1 MB/s = 6 s
    assert m.transfer_cost(1_000_000) == pytest.approx(6.0)


def test_overhead_trivial_relative_to_lan_transfer():
    """The paper's claim: crypto cost per remote hit is small compared
    to the 10 Mbps network transfer it protects (for era hardware)."""
    m = SecurityOverheadModel()
    doc = 8_192
    lan_seconds = 0.1 + doc * 8 / 10e6
    assert m.transfer_cost(doc) < 0.2 * lan_seconds


def test_model_validation():
    with pytest.raises(ValueError):
        SecurityOverheadModel(md5_bytes_per_second=0)
    with pytest.raises(ValueError):
        SecurityOverheadModel(rsa_private_seconds=-1)
    m = SecurityOverheadModel()
    with pytest.raises(ValueError):
        m.transfer_cost(-1)


def test_measured_model_is_positive():
    m = SecurityOverheadModel.measured(sample_bytes=4096, key_bits=128)
    assert m.md5_bytes_per_second > 0
    assert m.des_bytes_per_second > 0
    assert m.rsa_private_seconds > 0
    assert m.rsa_public_seconds > 0
