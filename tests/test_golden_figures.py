"""Golden-result regression tests.

Small-profile versions of fig2, fig3, and table1 are re-run here and
compared against checked-in golden JSON generated once from the serial
engine (``PYTHONPATH=src python tools/make_goldens.py``).  Tolerance is
1e-9 — effectively bit-exact for these ratios — so neither the
parallel execution path, the simulator, nor the synthetic trace
generator can silently change the paper's numbers.

If a change *intentionally* alters results, regenerate the goldens and
call it out in the commit message.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.mrc import (
    MRC_EXACT_ORGANIZATIONS,
    capacity_grid,
    compute_mrc,
)
from repro.core import Organization, run_policy_sweep, run_size_sweep
from repro.core.sweep import PAPER_SIZE_FRACTIONS
from repro.traces.profiles import PAPER_TRACES, small_paper_trace
from repro.traces.stats import compute_stats

GOLDEN_PATH = Path(__file__).parent / "golden" / "golden_small.json"
TOLERANCE = 1e-9


@pytest.fixture(scope="module")
def golden() -> dict:
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} missing - regenerate with "
        "`PYTHONPATH=src python tools/make_goldens.py`"
    )
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def fig_trace(golden):
    return small_paper_trace(golden["_meta"]["fig_trace"])


def assert_close(measured: float, pinned: float, what: str) -> None:
    assert abs(measured - pinned) <= TOLERANCE, (
        f"{what}: measured {measured!r} drifted from golden {pinned!r} "
        f"(|diff| = {abs(measured - pinned):.3e} > {TOLERANCE:g}); if this "
        "change is intentional, regenerate tests/golden/ via "
        "tools/make_goldens.py"
    )


def check_fig2(sweep, pinned: dict) -> None:
    seen = set()
    for (org, frac), result in sweep.results.items():
        key = f"{org.value}@{frac:g}"
        assert key in pinned, f"cell {key} not in golden file"
        assert_close(result.hit_ratio, pinned[key]["hit_ratio"], f"fig2 {key} HR")
        assert_close(
            result.byte_hit_ratio, pinned[key]["byte_hit_ratio"], f"fig2 {key} BHR"
        )
        seen.add(key)
    assert seen == set(pinned), "sweep grid does not cover the golden grid"


def test_fig2_golden_serial(golden, fig_trace):
    sweep = run_policy_sweep(
        fig_trace,
        organizations=tuple(Organization),
        fractions=PAPER_SIZE_FRACTIONS,
        browser_sizing="minimum",
        workers=0,
    )
    assert not sweep.failures
    check_fig2(sweep, golden["fig2"][golden["_meta"]["fig_trace"]])


def test_fig2_golden_parallel(golden, fig_trace):
    """The process-pool path must reproduce the serially-pinned
    figures exactly — the engine's central guarantee."""
    sweep = run_policy_sweep(
        fig_trace,
        organizations=tuple(Organization),
        fractions=PAPER_SIZE_FRACTIONS,
        browser_sizing="minimum",
        workers=2,
    )
    assert not sweep.failures
    assert sweep.timing is not None and sweep.timing.workers == 2
    check_fig2(sweep, golden["fig2"][golden["_meta"]["fig_trace"]])


def test_fig3_golden(golden, fig_trace):
    sweep = run_size_sweep(
        fig_trace,
        Organization.BROWSERS_AWARE_PROXY,
        fractions=PAPER_SIZE_FRACTIONS,
        browser_sizing="minimum",
        workers=0,
    )
    pinned = golden["fig3"][golden["_meta"]["fig_trace"]]
    assert set(pinned) == {f"{f:g}" for f in PAPER_SIZE_FRACTIONS}
    for frac in PAPER_SIZE_FRACTIONS:
        result = sweep.get(Organization.BROWSERS_AWARE_PROXY, frac)
        cell = pinned[f"{frac:g}"]
        for kind, breakdown in (
            ("hit", result.breakdown()),
            ("byte", result.byte_breakdown()),
        ):
            for share in ("local_browser", "proxy", "remote_browser"):
                assert_close(
                    getattr(breakdown, share),
                    cell[kind][share],
                    f"fig3 {frac:g} {kind}/{share}",
                )


@pytest.fixture(scope="module")
def mrc_analysis(golden, fig_trace):
    """One-pass analysis of the golden trace at the golden grid."""
    return compute_mrc(fig_trace, capacity_grid(fig_trace, PAPER_SIZE_FRACTIONS))


def test_mrc_golden_pinned(golden, mrc_analysis):
    """The one-pass predictions themselves are pinned to 1e-9, so the
    stack-distance engine cannot silently drift either."""
    pinned = golden["mrc"][golden["_meta"]["fig_trace"]]
    seen = set()
    for org in Organization:
        for frac in PAPER_SIZE_FRACTIONS:
            key = f"{org.value}@{frac:g}"
            assert key in pinned, f"mrc cell {key} not in golden file"
            point = mrc_analysis.predict(org, frac)
            assert point.exact == pinned[key]["exact"]
            assert_close(point.hit_ratio, pinned[key]["hit_ratio"], f"mrc {key} HR")
            assert_close(
                point.byte_hit_ratio, pinned[key]["byte_hit_ratio"], f"mrc {key} BHR"
            )
            seen.add(key)
    assert seen == set(pinned), "mrc grid does not cover the golden grid"


def test_mrc_cross_validates_replay_goldens(golden, mrc_analysis):
    """The satellite cross-validation: one MRC pass reproduces the
    replayed fig2 goldens — exactly for the pure-LRU organizations,
    within the documented bound for the multi-level approximations."""
    meta = golden["_meta"]
    replayed = golden["fig2"][meta["fig_trace"]]
    for org in Organization:
        tol = (
            meta["mrc_exact_tolerance"]
            if org in MRC_EXACT_ORGANIZATIONS
            else meta["mrc_approx_tolerance"]
        )
        for frac in PAPER_SIZE_FRACTIONS:
            key = f"{org.value}@{frac:g}"
            point = mrc_analysis.predict(org, frac)
            for got, want, what in (
                (point.hit_ratio, replayed[key]["hit_ratio"], "HR"),
                (point.byte_hit_ratio, replayed[key]["byte_hit_ratio"], "BHR"),
            ):
                assert abs(got - want) <= tol, (
                    f"mrc vs replay {key} {what}: {got!r} vs {want!r} "
                    f"(|diff| = {abs(got - want):.3e} > {tol:g})"
                )


def test_mrc_cross_validates_fig3_breakdown(golden, mrc_analysis):
    """The BAPS hit-location shares derived from the one-pass tallies
    stay within the documented bound of the replayed fig3 goldens."""
    meta = golden["_meta"]
    pinned = golden["fig3"][meta["fig_trace"]]
    tol = meta["mrc_breakdown_tolerance"]
    for frac in PAPER_SIZE_FRACTIONS:
        result = mrc_analysis.to_simulation_result(
            Organization.BROWSERS_AWARE_PROXY, frac
        )
        cell = pinned[f"{frac:g}"]
        for kind, breakdown in (
            ("hit", result.breakdown()),
            ("byte", result.byte_breakdown()),
        ):
            for share in ("local_browser", "proxy", "remote_browser"):
                got = getattr(breakdown, share)
                want = cell[kind][share]
                assert abs(got - want) <= tol, (
                    f"mrc fig3 {frac:g} {kind}/{share}: {got!r} vs "
                    f"{want!r} (|diff| = {abs(got - want):.3e} > {tol:g})"
                )


@pytest.mark.parametrize("trace_name", sorted(PAPER_TRACES))
def test_table1_golden(golden, trace_name):
    pinned = golden["table1"][trace_name]
    stats = compute_stats(small_paper_trace(trace_name))
    assert stats.n_requests == pinned["n_requests"]
    assert stats.n_clients == pinned["n_clients"]
    assert stats.n_docs == pinned["n_docs"]
    assert_close(stats.max_hit_ratio, pinned["max_hit_ratio"], f"{trace_name} max HR")
    assert_close(
        stats.max_byte_hit_ratio,
        pinned["max_byte_hit_ratio"],
        f"{trace_name} max BHR",
    )
