"""PPM predictor, prefetch engine, and the embedded-objects workload."""

import numpy as np
import pytest

from repro.core import HitLocation
from repro.prefetch import PPMPredictor, PrefetchConfig, simulate_prefetch
from repro.traces.record import Trace
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace


# -- PPM predictor ------------------------------------------------------------


def test_learns_simple_chain():
    p = PPMPredictor(order=2)
    for _ in range(5):
        for doc in (1, 2, 3):
            p.observe(0, doc)
    preds = p.predict(0, threshold=0.5)  # history ends ... 2, 3
    assert preds
    assert preds[0].doc == 1  # after (2,3) comes 1 in the loop


def test_higher_order_beats_lower():
    p = PPMPredictor(order=2)
    # after (1,2) always 3; after plain 2 it is 3 or 4 evenly
    for _ in range(10):
        p.observe(0, 1)
        p.observe(0, 2)
        p.observe(0, 3)
        p.observe(0, 9)
        p.observe(0, 2)
        p.observe(0, 4)
        p.observe(0, 9)
    p.observe(0, 1)
    p.observe(0, 2)
    preds = p.predict(0, threshold=0.6, max_predictions=1)
    assert preds and preds[0].doc == 3
    assert preds[0].order == 2


def test_no_history_no_predictions():
    p = PPMPredictor()
    assert p.predict(0) == []


def test_threshold_filters():
    p = PPMPredictor(order=1)
    for doc in (2, 3, 2, 4, 2, 5):  # after 2: 3/4/5 once each
        p.observe(0, doc)
    p.observe(0, 2)
    assert p.predict(0, threshold=0.5) == []
    assert len(p.predict(0, threshold=0.3, max_predictions=5)) == 3


def test_clients_learn_separately():
    p = PPMPredictor(order=1)
    for _ in range(5):
        p.observe(0, 1)
        p.observe(0, 2)
    p.observe(1, 1)
    assert p.predict(1, threshold=0.5)  # shared model, per-client history
    # client 1's history is just [1]; prediction uses context (1,) -> 2
    assert p.predict(1, threshold=0.5)[0].doc == 2


def test_bounded_contexts():
    p = PPMPredictor(order=1, max_contexts=3)
    for doc in range(50):
        p.observe(0, doc)
    assert p.n_contexts <= 3
    assert p.footprint_entries() <= 3 * 50


def test_validation():
    with pytest.raises(ValueError):
        PPMPredictor(order=0)
    p = PPMPredictor()
    p.observe(0, 1)
    with pytest.raises(ValueError):
        p.predict(0, threshold=1.5)


# -- embedded objects in the generator -----------------------------------------


def test_embedded_objects_follow_pages():
    config = SyntheticTraceConfig(
        n_requests=4_000,
        n_clients=5,
        p_new=0.2,
        embedded_per_page_mean=3.0,
    )
    trace = generate_trace(config, seed=1)
    # sequential structure: the same (doc -> next doc) transition must
    # repeat often (pages drag their embedded objects behind them)
    transitions: dict[tuple[int, int], int] = {}
    per_client: dict[int, int] = {}
    for _, c, d, _, _ in trace.iter_rows():
        prev = per_client.get(c)
        if prev is not None:
            transitions[(prev, d)] = transitions.get((prev, d), 0) + 1
        per_client[c] = d
    repeated = sum(1 for v in transitions.values() if v >= 3)
    assert repeated > 20


def test_embedded_disabled_is_bit_identical():
    config = SyntheticTraceConfig(n_requests=3_000, n_clients=5)
    assert config.embedded_per_page_mean == 0.0
    a = generate_trace(config, seed=9)
    b = generate_trace(config, seed=9)
    assert np.array_equal(a.docs, b.docs)
    assert np.array_equal(a.sizes, b.sizes)


def test_embedded_validation():
    with pytest.raises(ValueError):
        SyntheticTraceConfig(embedded_per_page_mean=-1.0)


# -- prefetch engine --------------------------------------------------------------


@pytest.fixture(scope="module")
def page_trace():
    return generate_trace(
        SyntheticTraceConfig(
            n_requests=8_000,
            n_clients=10,
            p_new=0.15,
            p_self=0.2,
            embedded_per_page_mean=3.0,
            client_activity_alpha=0.5,
        ),
        seed=3,
    )


def test_prefetch_improves_hit_ratio(page_trace):
    base = PrefetchConfig(
        proxy_capacity=2_000_000,
        browser_capacity=200_000,
        max_prefetches_per_request=0,  # disabled = plain PLB
    )
    on = PrefetchConfig(
        proxy_capacity=2_000_000,
        browser_capacity=200_000,
        confidence_threshold=0.4,
        max_prefetches_per_request=2,
    )
    r_off, s_off = simulate_prefetch(page_trace, base)
    r_on, s_on = simulate_prefetch(page_trace, on)
    assert s_off.issued == 0
    assert s_on.issued > 0
    assert s_on.precision > 0.3  # page structure is predictable
    assert r_on.hit_ratio > r_off.hit_ratio + 0.02


def test_prefetch_accounting_consistent(page_trace):
    config = PrefetchConfig(
        proxy_capacity=2_000_000, browser_capacity=200_000, confidence_threshold=0.4
    )
    r, s = simulate_prefetch(page_trace, config)
    assert r.n_requests == len(page_trace)
    assert s.useful <= s.issued
    assert s.wan_fetches <= s.issued
    assert 0.0 <= s.precision <= 1.0
    # prefetch WAN traffic shows up in the overhead report
    assert r.overhead.origin_miss_time > 0


def test_prefetch_wasted_on_random_workload():
    """Without sequential structure PPM precision collapses — the
    documented failure mode of prefetching."""
    trace = generate_trace(
        SyntheticTraceConfig(n_requests=6_000, n_clients=10), seed=4
    )
    config = PrefetchConfig(
        proxy_capacity=2_000_000, browser_capacity=100_000, confidence_threshold=0.3
    )
    _, s = simulate_prefetch(trace, config)
    assert s.precision < 0.3


def test_prefetch_config_validation():
    with pytest.raises(ValueError):
        PrefetchConfig(proxy_capacity=-1, browser_capacity=0)
    with pytest.raises(ValueError):
        PrefetchConfig(proxy_capacity=1, browser_capacity=1, confidence_threshold=2.0)
