"""Segmented LRU behaviour."""

import pytest

from repro.cache import SLRUCache


def test_new_objects_enter_probation():
    c = SLRUCache(100)
    c.put(1, 40)
    assert c.segment_of(1) == "probation"


def test_hit_promotes_to_protected():
    c = SLRUCache(100)
    c.put(1, 40)
    c.get(1)
    assert c.segment_of(1) == "protected"


def test_eviction_prefers_probation():
    c = SLRUCache(100)
    c.put(1, 40)
    c.get(1)           # 1 protected
    c.put(2, 40)       # 2 probation
    evicted = c.put(3, 40)
    assert evicted == [2]
    assert 1 in c and 3 in c


def test_scan_resistance():
    """A burst of one-touch objects must not evict the popular one."""
    c = SLRUCache(200)
    c.put(100, 50)
    c.get(100)  # protect it
    for k in range(20):
        c.put(k, 50)  # scan of cold objects
    assert 100 in c
    assert c.segment_of(100) == "protected"


def test_protected_overflow_demotes():
    c = SLRUCache(100, protected_fraction=0.5)  # protected <= 50
    c.put(1, 40)
    c.get(1)  # protected_used = 40
    c.put(2, 40)
    c.get(2)  # promoting 2 overflows protection -> 1 demoted
    assert c.segment_of(2) == "protected"
    assert c.segment_of(1) == "probation"


def test_protected_hit_refreshes_recency():
    c = SLRUCache(120, protected_fraction=0.7)  # protected <= 84
    c.put(1, 40)
    c.get(1)
    c.put(2, 40)
    c.get(2)          # both protected (80 <= 84)
    c.get(1)          # 1 is now protected-MRU
    c.put(3, 40)
    c.get(3)          # overflow: demote protected-LRU = 2
    assert c.segment_of(2) == "probation"
    assert c.segment_of(1) == "protected"


def test_refresh_size_accounting_in_protected():
    c = SLRUCache(200, protected_fraction=0.5)
    c.put(1, 40)
    c.get(1)
    c.put(1, 90, version=1)  # refresh grows the protected object
    assert c.segment_of(1) == "protected"
    assert c._protected_used == 90
    c.check_invariants()


def test_probation_then_protected_eviction():
    c = SLRUCache(80)
    c.put(1, 40)
    c.get(1)          # protected
    c.put(2, 40)      # probation
    evicted = c.put(3, 80)  # needs the whole cache
    assert set(evicted) == {1, 2}
    assert list(c) == [3]


def test_invalid_fraction():
    with pytest.raises(ValueError):
        SLRUCache(100, protected_fraction=1.5)


def test_registered_in_policies():
    from repro.cache import POLICIES, make_cache

    assert POLICIES["slru"] is SLRUCache
    assert isinstance(make_cache("slru", 10), SLRUCache)


def test_invariants_under_churn():
    c = SLRUCache(300, protected_fraction=0.6)
    for i in range(300):
        c.put(i % 17, (i * 13) % 70 + 5, version=i)
        if i % 2:
            c.get((i * 5) % 17)
        if i % 13 == 0:
            c.invalidate((i + 3) % 17)
        c.check_invariants()
        # segment bookkeeping agrees with the entry table
        assert set(c._probation) | set(c._protected) == set(c._entries)
        assert not (set(c._probation) & set(c._protected))
        assert c._protected_used == sum(
            c._entries[k].size for k in c._protected
        )
