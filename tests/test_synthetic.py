"""Synthetic workload generator tests."""

import numpy as np
import pytest

from repro.traces.stats import compute_stats
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace


def gen(seed=0, **kw):
    defaults = dict(n_requests=6_000, n_clients=12)
    defaults.update(kw)
    return generate_trace(SyntheticTraceConfig(**defaults), seed=seed)


def test_shape_and_dtypes():
    t = gen()
    assert len(t) == 6_000
    assert t.clients.max() < 12
    assert (t.sizes >= 64).all()
    assert (np.diff(t.timestamps) >= 0).all()


def test_deterministic_for_seed():
    a, b = gen(seed=3), gen(seed=3)
    assert np.array_equal(a.docs, b.docs)
    assert np.array_equal(a.sizes, b.sizes)
    assert np.array_equal(a.timestamps, b.timestamps)
    c = gen(seed=4)
    assert not np.array_equal(a.docs, c.docs)


def test_all_clients_present():
    t = gen()
    assert t.n_clients == 12


def test_p_new_controls_max_hit_ratio():
    lo = compute_stats(gen(p_new=0.2)).max_hit_ratio
    hi = compute_stats(gen(p_new=0.7)).max_hit_ratio
    assert lo > hi
    # roughly 1 - p_new (mutations shave a little more)
    assert lo == pytest.approx(0.8, abs=0.08)
    assert hi == pytest.approx(0.3, abs=0.08)


def test_beta_controls_byte_hit_gap():
    flat = compute_stats(gen(size_popularity_beta=0.0))
    steep = compute_stats(gen(size_popularity_beta=1.2))
    gap_flat = flat.max_hit_ratio - flat.max_byte_hit_ratio
    gap_steep = steep.max_hit_ratio - steep.max_byte_hit_ratio
    assert gap_steep > gap_flat


def test_mutation_rate_creates_versions():
    none = gen(p_mutate=0.0)
    some = gen(p_mutate=0.05)
    assert none.versions.max() == 0
    assert some.versions.max() >= 1


def test_mean_doc_size_calibrated():
    t = gen(mean_doc_size=20_000)
    assert t.sizes.mean() == pytest.approx(20_000, rel=0.05)


def test_duration_respected():
    t = gen(duration=3600.0)
    assert t.timestamps[0] == 0.0
    assert t.timestamps[-1] == pytest.approx(3600.0)


def test_sizes_constant_per_doc_version():
    t = gen()
    seen: dict[tuple[int, int], int] = {}
    for _, _, d, s, v in t.iter_rows():
        key = (d, v)
        assert seen.setdefault(key, s) == s


def test_private_docs_reduce_sharing():
    shared = gen(private_doc_frac=0.0)
    private = gen(private_doc_frac=0.9)

    def cross_client_docs(t):
        holders = {}
        for _, c, d, _, _ in t.iter_rows():
            holders.setdefault(d, set()).add(c)
        return sum(1 for s in holders.values() if len(s) > 1)

    assert cross_client_docs(private) < cross_client_docs(shared)


def test_activity_skew():
    skewed = gen(client_activity_alpha=0.1)
    counts = np.bincount(skewed.clients, minlength=12)
    # top client dominates under a strongly skewed Dirichlet
    assert counts.max() > 3 * np.median(counts)


def test_config_validation():
    with pytest.raises(ValueError):
        SyntheticTraceConfig(n_requests=0)
    with pytest.raises(ValueError):
        SyntheticTraceConfig(p_new=1.5)
    with pytest.raises(ValueError):
        SyntheticTraceConfig(p_new=0.7, p_self=0.5)
    with pytest.raises(ValueError):
        SyntheticTraceConfig(mean_doc_size=0)


def test_scaled_helper():
    cfg = SyntheticTraceConfig(n_requests=10_000)
    assert cfg.scaled(0.5).n_requests == 5_000
    assert cfg.scaled(0.5).p_new == cfg.p_new
    with pytest.raises(ValueError):
        cfg.scaled(0)


def test_tiny_trace_generates():
    t = gen(n_requests=1, n_clients=1)
    assert len(t) == 1
