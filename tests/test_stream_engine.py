"""The flat-state streaming engine is bit-identical to the simulator.

``simulate_stream`` replays the same request path as ``simulate`` with
per-client hot state in flat arrays instead of per-client cache
objects; every field of the returned :class:`SimulationResult` —
counters, accumulated float overheads, index statistics — must match
exactly for every supported configuration, whether the source is a
materialised ``Trace`` or a ``TraceStream``.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import Organization, SimulationConfig, simulate, simulate_stream
from repro.core.stream_engine import check_stream_config
from repro.traces import SyntheticTraceConfig, TraceStream, generate_trace
from repro.traces.record import Trace

ALL_ORGS = list(Organization)


def assert_identical(trace, config, orgs=ALL_ORGS, source=None):
    for org in orgs:
        a = dataclasses.asdict(simulate(trace, org, config))
        b = dataclasses.asdict(simulate_stream(source or trace, org, config))
        assert a == b, f"stream engine diverged for {org}"


def small_trace(seed=0, n=2_000, clients=25):
    return generate_trace(
        SyntheticTraceConfig(n_requests=n, n_clients=clients), seed=seed
    )


def test_identical_base_config():
    t = small_trace()
    assert_identical(t, SimulationConfig.relative(t, proxy_frac=0.1, browser_sizing="minimum"))


def test_identical_with_index_ttl():
    t = small_trace(1)
    cfg = SimulationConfig.relative(t, proxy_frac=0.05, browser_sizing="minimum").with_(
        index_entry_ttl=30.0
    )
    assert_identical(t, cfg)


def test_identical_fifo_proxy():
    t = small_trace(2)
    cfg = SimulationConfig.relative(t, proxy_frac=0.1, browser_sizing="minimum").with_(
        proxy_policy="fifo"
    )
    assert_identical(t, cfg)


def test_identical_remote_hit_knobs():
    t = small_trace(3)
    cfg = SimulationConfig.relative(t, proxy_frac=0.1, browser_sizing="minimum").with_(
        remote_hit_refreshes_holder=False, cache_remote_hits_at_proxy=True
    )
    assert_identical(t, cfg)


def test_identical_heterogeneous_capacities():
    t = small_trace(4)
    base = SimulationConfig.relative(t, proxy_frac=0.1, browser_sizing="minimum")
    caps = tuple(
        int(base.browser_capacity * (1.6 if i % 2 == 0 else 0.4))
        for i in range(t.n_clients)
    )
    assert_identical(t, base.with_(browser_capacities=caps))


def test_identical_security_model():
    from repro.security.protocols import SecurityOverheadModel

    t = small_trace(5)
    cfg = SimulationConfig.relative(t, proxy_frac=0.1, browser_sizing="minimum").with_(
        security=SecurityOverheadModel()
    )
    assert_identical(t, cfg)


def test_identical_from_trace_stream():
    tc = SyntheticTraceConfig(n_requests=1_500, n_clients=20)
    trace = generate_trace(tc, seed=7)
    stream = TraceStream(tc, seed=7, chunk_rows=256)
    cfg = SimulationConfig.relative(trace, proxy_frac=0.1, browser_sizing="minimum")
    assert_identical(trace, cfg, source=stream)


@given(
    seed=st.integers(0, 2**31),
    n=st.integers(1, 300),
    clients=st.integers(1, 12),
    proxy_frac=st.sampled_from([0.02, 0.1, 0.5]),
    ttl=st.sampled_from([None, 15.0]),
)
@settings(max_examples=30, deadline=None)
def test_identical_property(seed, n, clients, proxy_frac, ttl):
    t = generate_trace(
        SyntheticTraceConfig(n_requests=n, n_clients=clients), seed=seed
    )
    if not t.has_dense_clients:  # n < clients cannot cover every id
        t = t.renumbered()
    cfg = SimulationConfig.relative(
        t, proxy_frac=proxy_frac, browser_sizing="minimum"
    ).with_(index_entry_ttl=ttl)
    assert_identical(t, cfg)


# -- tiny hand traces hit the cache corner cases -------------------------------


def hand(rows, versions=None):
    n = len(rows)
    return Trace(
        timestamps=np.array([float(r[0]) for r in rows]),
        clients=np.array([r[1] for r in rows], dtype=np.int64),
        docs=np.array([r[2] for r in rows], dtype=np.int64),
        sizes=np.array([r[3] for r in rows], dtype=np.int64),
        versions=np.array(versions or [0] * n, dtype=np.int64),
        name="hand",
    )


def test_identical_oversized_and_refresh_corners():
    # oversized insert, oversized refresh (evicts itself), and a
    # version bump refreshing in place
    t = hand(
        [(0.0, 0, 0, 80), (1.0, 0, 1, 200), (2.0, 0, 0, 150), (3.0, 1, 0, 150)],
        versions=[0, 0, 1, 1],
    )
    cfg = SimulationConfig(proxy_capacity=0, browser_capacity=100)
    assert_identical(t, cfg)


def test_identical_zero_capacity_and_empty():
    t = hand([(0.0, 0, 0, 10), (1.0, 1, 0, 10)])
    cfg = SimulationConfig(
        proxy_capacity=0, browser_capacity=0, browser_capacities=(50, 0)
    )
    assert_identical(t, cfg)
    empty = Trace(
        timestamps=np.array([]),
        clients=np.array([], dtype=np.int64),
        docs=np.array([], dtype=np.int64),
        sizes=np.array([], dtype=np.int64),
        versions=np.array([], dtype=np.int64),
        name="empty",
    )
    assert_identical(empty, SimulationConfig(proxy_capacity=10, browser_capacity=10))


# -- subset validation ---------------------------------------------------------


@pytest.mark.parametrize(
    "knob",
    [
        dict(memory_fraction=0.5),
        dict(browser_policy="fifo"),
        dict(corruption_rate=0.1),
        dict(index_kind="bloom"),
        dict(holder_availability=0.9),
        dict(index_update_policy="periodic"),
    ],
)
def test_unsupported_knobs_rejected(knob):
    t = hand([(0.0, 0, 0, 10)])
    cfg = SimulationConfig(proxy_capacity=100, browser_capacity=100).with_(**knob)
    with pytest.raises(ValueError, match="simulate_stream does not support"):
        simulate_stream(t, Organization.BROWSERS_AWARE_PROXY, cfg)


def test_check_stream_config_accepts_defaults():
    check_stream_config(SimulationConfig(proxy_capacity=1, browser_capacity=1))


def test_sparse_source_rejected():
    t = hand([(0.0, 0, 0, 10), (1.0, 7, 0, 10)])
    cfg = SimulationConfig(proxy_capacity=100, browser_capacity=100)
    with pytest.raises(ValueError, match="sparse client ids"):
        simulate_stream(t, Organization.PROXY_AND_LOCAL_BROWSER, cfg)


def test_capacities_must_cover_clients():
    t = hand([(0.0, 0, 0, 10), (1.0, 1, 0, 10), (2.0, 2, 0, 10)])
    cfg = SimulationConfig(
        proxy_capacity=100, browser_capacity=0, browser_capacities=(10, 10)
    )
    with pytest.raises(ValueError, match="covers 2 clients"):
        simulate_stream(t, Organization.PROXY_AND_LOCAL_BROWSER, cfg)


def test_flat_state_no_per_client_objects():
    """A high-client-count replay must not allocate per-client cache
    objects: flat arrays keep per-client cost to a few machine words."""
    import tracemalloc

    n_clients = 200_000
    n = 250_000
    rng = np.random.default_rng(0)
    clients = np.concatenate(
        [
            np.arange(n_clients, dtype=np.int64),  # every id appears
            rng.integers(0, n_clients, size=n - n_clients, dtype=np.int64),
        ]
    )
    t = Trace(
        timestamps=np.arange(n, dtype=float),
        clients=clients,
        docs=rng.integers(0, 5_000, size=n, dtype=np.int64),
        sizes=np.full(n, 1_000, dtype=np.int64),
        versions=np.zeros(n, dtype=np.int64),
        name="wide",
    )
    cfg = SimulationConfig(proxy_capacity=10_000_000, browser_capacity=10_000)

    tracemalloc.start()
    try:
        simulate(t, Organization.PROXY_AND_LOCAL_BROWSER, cfg)
        _, object_peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    tracemalloc.start()
    try:
        simulate_stream(t, Organization.PROXY_AND_LOCAL_BROWSER, cfg)
        _, flat_peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    # the materialised engine allocates an LRUCache + OrderedDict per
    # client plus per-client handle lists; the flat slot pool must cost
    # well under half of that at this client width.
    assert flat_peak < object_peak / 2, (
        f"flat replay peaked at {flat_peak:,} B, object engine at "
        f"{object_peak:,} B — expected < half"
    )
