"""Browser index — periodic (stale) update mode."""

from repro.index import BrowserIndex, PeriodicUpdatePolicy, UpdateMode
from repro.index.staleness import ClientUpdateState, StalenessStats


def make_index(threshold=0.5, n=3, **kw):
    return BrowserIndex(
        n_clients=n,
        mode=UpdateMode.PERIODIC,
        policy=PeriodicUpdatePolicy(threshold=threshold, **kw),
    )


def test_pending_updates_invisible_until_flush():
    idx = make_index(threshold=0.9)
    idx.record_insert(client=1, doc=7, version=0, size=100, now=0.0)
    # below threshold: not yet visible
    assert idx.lookup(doc=7, exclude_client=0, now=1.0) is None
    idx.flush(1, now=2.0)
    assert idx.lookup(doc=7, exclude_client=0, now=3.0) is not None


def test_threshold_triggers_flush():
    # with min_docs=1 the first pending change crosses a 50% threshold
    # immediately.
    idx = make_index(threshold=0.5, min_docs=1)
    idx.record_insert(client=1, doc=7, version=0, size=100, now=0.0)
    assert idx.lookup(doc=7, exclude_client=0, now=1.0) is not None


def test_insert_evict_coalesce_in_batch():
    idx = make_index(threshold=0.99)
    idx.record_insert(client=1, doc=7, version=0, size=100, now=0.0)
    idx.record_evict(client=1, doc=7, now=1.0)
    idx.flush(1, now=2.0)
    assert idx.lookup(doc=7, exclude_client=0, now=3.0) is None
    assert idx.n_entries == 0


def test_stale_eviction_produces_visible_ghost():
    idx = make_index(threshold=0.9)
    idx.record_insert(client=1, doc=7, version=0, size=100, now=0.0)
    idx.flush(1, now=1.0)
    idx.record_evict(client=1, doc=7, now=2.0)  # pending, not flushed
    ghost = idx.lookup(doc=7, exclude_client=0, now=3.0)
    assert ghost is not None  # the stale index still names client 1
    idx.flush(1, now=4.0)
    assert idx.lookup(doc=7, exclude_client=0, now=5.0) is None


def test_max_interval_forces_flush():
    idx = BrowserIndex(
        n_clients=2,
        mode=UpdateMode.PERIODIC,
        policy=PeriodicUpdatePolicy(threshold=1.0, max_interval=10.0),
    )
    idx.record_insert(client=0, doc=1, version=0, size=10, now=0.0)
    assert idx.lookup(doc=1, exclude_client=1, now=1.0) is None
    # next change past the interval flushes the batch
    idx.record_insert(client=0, doc=2, version=0, size=10, now=15.0)
    assert idx.lookup(doc=1, exclude_client=1, now=16.0) is not None


def test_flush_counters():
    idx = make_index(threshold=0.99)
    idx.record_insert(client=1, doc=7, version=0, size=100, now=0.0)
    idx.record_insert(client=1, doc=8, version=0, size=100, now=0.0)
    n = idx.flush(1, now=1.0)
    assert n == 2
    assert idx.stats.flushes == 1
    assert idx.stats.flushed_items == 2
    assert idx.flush(1, now=2.0) == 0  # nothing pending


def test_flush_all():
    idx = make_index(threshold=0.99)
    idx.record_insert(client=0, doc=1, version=0, size=10, now=0.0)
    idx.record_insert(client=2, doc=2, version=0, size=10, now=0.0)
    idx.flush_all(now=1.0)
    assert idx.n_entries == 2


def test_false_hit_and_miss_counters():
    idx = make_index()
    idx.record_false_hit()
    idx.record_false_miss()
    assert idx.stats.false_hits == 1
    assert idx.stats.false_misses == 1


def test_policy_should_flush_logic():
    policy = PeriodicUpdatePolicy(threshold=0.10)
    state = ClientUpdateState(pending_changes=0, cached_docs=100)
    assert not policy.should_flush(state, now=0.0)
    state.pending_changes = 9
    assert not policy.should_flush(state, now=0.0)
    state.pending_changes = 10
    assert policy.should_flush(state, now=0.0)


def test_staleness_stats_merge():
    a = StalenessStats(false_hits=1, false_misses=2, flushes=3, flushed_items=4)
    b = StalenessStats(false_hits=10, false_misses=20, flushes=30, flushed_items=40)
    m = a.merged(b)
    assert (m.false_hits, m.false_misses, m.flushes, m.flushed_items) == (11, 22, 33, 44)
