"""Shared fixtures: small deterministic traces and configurations.

Unit/integration tests run on purpose-built small traces (a few
thousand requests) so the whole suite stays fast; the full paper-scale
traces are exercised by the benchmarks.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core.config import SimulationConfig
from repro.traces.record import Trace
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace

import numpy as np


def assert_result_roundtrips(result):
    """Exhaustive journal round-trip check for a SimulationResult.

    Serialises through :func:`repro.core.journal.result_to_jsonable`,
    an actual JSON encode/decode, and back; then walks **every** field
    of the dataclass via :func:`dataclasses.fields`, so a counter added
    to :class:`~repro.core.metrics.SimulationResult` but forgotten in
    the journal codec fails here by name instead of silently loading
    as its default.  Returns the restored result for extra assertions.
    """
    from repro.core.journal import result_from_jsonable, result_to_jsonable

    restored = result_from_jsonable(
        json.loads(json.dumps(result_to_jsonable(result)))
    )
    for fld in dataclasses.fields(type(result)):
        original = getattr(result, fld.name)
        recovered = getattr(restored, fld.name)
        assert recovered == original, (
            f"field {fld.name!r} did not survive the journal round-trip: "
            f"{original!r} -> {recovered!r}"
        )
    assert dataclasses.asdict(restored) == dataclasses.asdict(result)
    return restored


@pytest.fixture(scope="session")
def small_trace() -> Trace:
    """8k requests, 20 clients — enough structure for cache dynamics."""
    config = SyntheticTraceConfig(
        n_requests=8_000,
        n_clients=20,
        p_new=0.45,
        p_self=0.2,
        client_activity_alpha=0.3,
        uniform_doc_frac=0.35,
        recency_bias=0.15,
        name="small",
    )
    return generate_trace(config, seed=42)


@pytest.fixture(scope="session")
def tiny_trace() -> Trace:
    """A hand-checkable 2-client trace.

    Layout (doc, size, version):
      t0 client0 doc0 (100)   compulsory miss
      t1 client0 doc0 (100)   local browser hit
      t2 client1 doc0 (100)   proxy hit (or remote-browser without proxy)
      t3 client1 doc1 (200)   compulsory miss
      t4 client0 doc1 (200)   proxy hit / remote hit
      t5 client0 doc2 (300)   compulsory miss
    """
    return Trace(
        timestamps=np.array([0.0, 1.0, 2.0, 3.0, 4.0, 5.0]),
        clients=np.array([0, 0, 1, 1, 0, 0]),
        docs=np.array([0, 0, 0, 1, 1, 2]),
        sizes=np.array([100, 100, 100, 200, 200, 300]),
        versions=np.zeros(6, dtype=np.int64),
        name="tiny",
    )


@pytest.fixture()
def roomy_config() -> SimulationConfig:
    """Caches big enough to never evict in the tiny trace."""
    return SimulationConfig(proxy_capacity=10_000, browser_capacity=10_000)
