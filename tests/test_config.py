"""SimulationConfig and the paper's sizing rules."""

import numpy as np
import pytest

from repro.core.config import (
    SimulationConfig,
    average_browser_capacity,
    minimum_browser_capacity,
)
from repro.traces.record import Trace


def test_minimum_browser_capacity_default():
    # aggregate of all browsers == proxy cache
    assert minimum_browser_capacity(1_000_000, 100) == 10_000


def test_minimum_browser_capacity_divisor():
    assert minimum_browser_capacity(1_000_000, 100, divisor=10) == 1_000
    assert minimum_browser_capacity(0, 5) == 1  # floor of 1 byte


def test_minimum_browser_capacity_validation():
    with pytest.raises(ValueError):
        minimum_browser_capacity(100, 0)
    with pytest.raises(ValueError):
        minimum_browser_capacity(-1, 10)
    with pytest.raises(ValueError):
        minimum_browser_capacity(100, 10, divisor=0)


def test_average_browser_capacity():
    t = Trace(
        timestamps=np.arange(4, dtype=float),
        clients=np.array([0, 0, 1, 1]),
        docs=np.array([0, 1, 2, 2]),
        sizes=np.array([100, 200, 400, 400]),
        versions=np.zeros(4, dtype=np.int64),
    )
    # footprints: client0 = 300, client1 = 400 -> mean 350
    assert average_browser_capacity(t, 0.1) == 35
    assert average_browser_capacity(t, 1.0) == 350
    with pytest.raises(ValueError):
        average_browser_capacity(t, 0.0)


def test_relative_constructor_minimum(small_trace):
    config = SimulationConfig.relative(small_trace, proxy_frac=0.10, browser_sizing="minimum")
    expected_proxy = int(0.10 * small_trace.infinite_cache_bytes())
    assert config.proxy_capacity == expected_proxy
    assert config.browser_capacity == minimum_browser_capacity(
        expected_proxy, small_trace.n_clients
    )


def test_relative_constructor_average(small_trace):
    config = SimulationConfig.relative(small_trace, proxy_frac=0.10, browser_sizing="average")
    assert config.browser_capacity == average_browser_capacity(small_trace, 0.10)
    custom = SimulationConfig.relative(
        small_trace, proxy_frac=0.10, browser_sizing="average", browser_frac=0.25
    )
    assert custom.browser_capacity == average_browser_capacity(small_trace, 0.25)


def test_relative_constructor_validation(small_trace):
    with pytest.raises(ValueError):
        SimulationConfig.relative(small_trace, proxy_frac=0.0)
    with pytest.raises(ValueError):
        SimulationConfig.relative(small_trace, proxy_frac=0.1, browser_sizing="huge")


def test_config_validation():
    with pytest.raises(ValueError):
        SimulationConfig(proxy_capacity=-1, browser_capacity=10)
    with pytest.raises(ValueError):
        SimulationConfig(proxy_capacity=10, browser_capacity=10, memory_fraction=1.5)
    with pytest.raises(ValueError):
        # browser memory override without the tiered model enabled
        SimulationConfig(
            proxy_capacity=10, browser_capacity=10, browser_memory_fraction=0.5
        )


def test_with_override(small_trace):
    config = SimulationConfig.relative(small_trace, proxy_frac=0.10)
    tweaked = config.with_(memory_fraction=0.1)
    assert tweaked.memory_fraction == 0.1
    assert tweaked.proxy_capacity == config.proxy_capacity
    assert config.memory_fraction is None  # original untouched


def test_tiered_requires_lru(small_trace):
    from repro.core import Organization, Simulator

    config = SimulationConfig.relative(
        small_trace, proxy_frac=0.1, memory_fraction=0.1, proxy_policy="lfu"
    )
    with pytest.raises(ValueError, match="LRU"):
        Simulator(small_trace, Organization.PROXY_AND_LOCAL_BROWSER, config)
