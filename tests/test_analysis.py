"""Workload analysis: popularity, locality, sizes, client skew."""

import numpy as np
import pytest

from repro.analysis import (
    analyze_trace,
    client_activity,
    concentration,
    fit_zipf,
    gini_coefficient,
    popularity_counts,
    size_stats,
    stack_distance_cdf,
    stack_distances,
    temporal_locality_score,
)
from repro.traces.record import Trace


def build(docs, sizes=None, clients=None, versions=None):
    n = len(docs)
    return Trace(
        timestamps=np.arange(n, dtype=float),
        clients=np.array(clients or [0] * n),
        docs=np.array(docs),
        sizes=np.array(sizes or [100] * n),
        versions=np.array(versions or [0] * n),
        name="a",
    )


# -- popularity -----------------------------------------------------------


def test_popularity_counts_sorted():
    t = build([0, 1, 0, 2, 0, 1])
    assert popularity_counts(t).tolist() == [3, 2, 1]


def test_fit_zipf_recovers_synthetic_alpha():
    # build a trace with exact Zipf counts ~ rank^-1
    docs = []
    for rank in range(1, 60):
        docs.extend([rank] * max(1, int(120 / rank)))
    t = build(docs)
    fit = fit_zipf(t)
    assert fit.alpha == pytest.approx(1.0, abs=0.15)
    assert fit.r_squared > 0.95
    assert fit.predicted_count(1) > fit.predicted_count(10)


def test_fit_zipf_degenerate():
    fit = fit_zipf(build([0]))
    assert fit.alpha == 0.0
    with pytest.raises(ValueError):
        fit.predicted_count(0)


def test_concentration():
    # doc 0 gets 9 of 10 references; top-10% of 2 docs = 1 doc
    t = build([0] * 9 + [1])
    assert concentration(t, 0.5) == pytest.approx(0.9)
    with pytest.raises(ValueError):
        concentration(t, 1.5)


def test_concentration_empty():
    assert concentration(Trace.empty(), 0.1) == 0.0


# -- stack distances ----------------------------------------------------------


def test_stack_distances_simple():
    # A B A: re-ref of A has distance 1 (B touched in between)
    assert stack_distances(build([0, 1, 0])).tolist() == [1]


def test_stack_distances_immediate_rereference():
    assert stack_distances(build([0, 0])).tolist() == [0]


def test_stack_distances_classic_sequence():
    # A B C B A: distances: B->1 (C), A->2 (B, C distinct)
    assert stack_distances(build([0, 1, 2, 1, 0])).tolist() == [1, 2]


def test_stack_distance_counts_distinct_docs_only():
    # A B B B A: only B between the As -> distance 1
    assert stack_distances(build([0, 1, 1, 1, 0])).tolist() == [0, 0, 1]


def test_version_bump_is_fresh_document():
    t = build([0, 0, 0], versions=[0, 1, 1])
    # first (0,v0); (0,v1) is new; (0,v1) re-ref distance 0
    assert stack_distances(t).tolist() == [0]


def test_stack_distance_cdf_monotone():
    rng = np.random.default_rng(0)
    t = build(rng.integers(0, 50, size=500).tolist())
    cdf = stack_distance_cdf(t, points=[1, 8, 64])
    assert 0 <= cdf[1] <= cdf[8] <= cdf[64] <= 1


def test_temporal_locality_score_bounds():
    t = build([0, 1, 0, 1] * 10)
    assert temporal_locality_score(t, window=4) == 1.0
    assert temporal_locality_score(Trace.empty()) == 0.0


# -- sizes --------------------------------------------------------------------


def test_size_stats_basic():
    t = build([0, 1, 2, 3], sizes=[100, 200, 300, 400])
    st = size_stats(t)
    assert st.mean == 250
    assert st.median == 250
    assert st.max == 400
    assert st.cv > 0


def test_size_popularity_anticorrelation_detected():
    # popular doc 0 small, unpopular docs big
    docs = [0] * 30 + [1, 2, 3]
    sizes = [10] * 30 + [10_000, 20_000, 30_000]
    st = size_stats(build(docs, sizes=sizes))
    assert st.size_popularity_correlation < -0.5


def test_size_stats_empty():
    st = size_stats(Trace.empty())
    assert st.mean == 0.0


# -- clients ---------------------------------------------------------------------


def test_client_activity_sorted():
    t = build([0] * 4, clients=[0, 0, 0, 1])
    assert client_activity(t).tolist() == [3, 1]


def test_gini_extremes():
    assert gini_coefficient(np.array([5, 5, 5, 5])) == pytest.approx(0.0, abs=1e-9)
    skewed = gini_coefficient(np.array([0, 0, 0, 100]))
    assert skewed == pytest.approx(0.75, abs=0.01)
    assert gini_coefficient(np.array([])) == 0.0
    with pytest.raises(ValueError):
        gini_coefficient(np.array([-1, 2]))


# -- full report -------------------------------------------------------------------


def test_analyze_trace_renders(small_trace):
    analysis = analyze_trace(small_trace, stack_points=[16, 256])
    text = analysis.render()
    assert "Zipf alpha" in text
    assert "client activity Gini" in text
    assert analysis.zipf.alpha > 0.3  # preferential attachment is Zipf-ish
    assert analysis.activity_gini > 0.2  # Dirichlet(0.3) is skewed
    assert analysis.sizes.size_popularity_correlation < 0.1


def test_cli_analyze(capsys, small_trace, tmp_path):
    from repro.cli import main
    from repro.traces.squid import write_squid_log

    path = tmp_path / "a.log"
    write_squid_log(small_trace, path)
    assert main(["analyze", "--log", str(path)]) == 0
    assert "Zipf alpha" in capsys.readouterr().out
