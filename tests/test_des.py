"""DES block cipher — FIPS vectors and mode round-trips."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.security.des import DES, des_decrypt_block, des_encrypt_block


def test_classic_test_vector():
    # The canonical worked example (used in countless DES tutorials).
    key = bytes.fromhex("133457799BBCDFF1")
    plaintext = bytes.fromhex("0123456789ABCDEF")
    expected = bytes.fromhex("85E813540F0AB405")
    assert des_encrypt_block(key, plaintext) == expected
    assert des_decrypt_block(key, expected) == plaintext


def test_all_zero_vector():
    key = bytes(8)
    ct = des_encrypt_block(key, bytes(8))
    assert ct == bytes.fromhex("8CA64DE9C1B123A7")


def test_block_roundtrip_many_keys():
    for seed in range(5):
        key = bytes([seed * 17 % 256] * 8)
        block = bytes([(seed * 31 + i) % 256 for i in range(8)])
        assert des_decrypt_block(key, des_encrypt_block(key, block)) == block


def test_ecb_roundtrip():
    d = DES(b"testkey!")
    msg = b"The quick brown fox jumps over the lazy dog"
    assert d.decrypt_ecb(d.encrypt_ecb(msg)) == msg


def test_ecb_empty_message():
    d = DES(b"testkey!")
    assert d.decrypt_ecb(d.encrypt_ecb(b"")) == b""


def test_cbc_roundtrip():
    d = DES(b"testkey!")
    msg = b"x" * 1000
    iv = b"12345678"
    assert d.decrypt_cbc(d.encrypt_cbc(msg, iv), iv) == msg


def test_cbc_differs_from_ecb_on_repeating_blocks():
    d = DES(b"testkey!")
    msg = b"ABCDEFGH" * 4
    ecb = d.encrypt_ecb(msg)
    cbc = d.encrypt_cbc(msg, b"00000000")
    # ECB leaks block repetition; CBC must not.
    assert ecb[:8] == ecb[8:16]
    assert cbc[:8] != cbc[8:16]


def test_cbc_wrong_iv_fails_or_garbles():
    d = DES(b"testkey!")
    msg = b"sensitive document content.."
    ct = d.encrypt_cbc(msg, b"ivivivIV")
    try:
        out = d.decrypt_cbc(ct, b"WRONGiv!")
    except ValueError:
        return  # padding failure is acceptable
    assert out != msg


def test_wrong_key_fails_or_garbles():
    msg = b"peer-to-peer web document sharing"
    ct = DES(b"key-one!").encrypt_ecb(msg)
    try:
        out = DES(b"key-two!").decrypt_ecb(ct)
    except ValueError:
        return
    assert out != msg


def test_key_length_validation():
    with pytest.raises(ValueError):
        DES(b"short")
    with pytest.raises(ValueError):
        DES(b"much too long key")


def test_block_length_validation():
    d = DES(b"testkey!")
    with pytest.raises(ValueError):
        d.encrypt_block(b"short")
    with pytest.raises(ValueError):
        d.decrypt_ecb(b"notamultipleof8!!")
    with pytest.raises(ValueError):
        d.decrypt_ecb(b"")
    with pytest.raises(ValueError):
        d.encrypt_cbc(b"msg", b"shortiv")


def test_padding_tamper_detected():
    d = DES(b"testkey!")
    ct = bytearray(d.encrypt_ecb(b"hello"))
    ct[-1] ^= 0xFF
    with pytest.raises(ValueError):
        d.decrypt_ecb(bytes(ct))


@settings(max_examples=25, deadline=None)
@given(key=st.binary(min_size=8, max_size=8), msg=st.binary(max_size=200))
def test_ecb_roundtrip_property(key, msg):
    d = DES(key)
    assert d.decrypt_ecb(d.encrypt_ecb(msg)) == msg


@settings(max_examples=25, deadline=None)
@given(
    key=st.binary(min_size=8, max_size=8),
    iv=st.binary(min_size=8, max_size=8),
    msg=st.binary(max_size=200),
)
def test_cbc_roundtrip_property(key, iv, msg):
    d = DES(key)
    assert d.decrypt_cbc(d.encrypt_cbc(msg, iv), iv) == msg
