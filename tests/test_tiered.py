"""Two-tier (memory/disk) LRU cache unit tests."""

import pytest

from repro.cache import Tier, TieredLRUCache


def test_new_insert_lands_in_memory():
    c = TieredLRUCache(1000, memory_fraction=0.1)  # memory = 100
    c.put(1, 50)
    assert c.tier_of(1) is Tier.MEMORY


def test_memory_overflow_demotes_lru_to_disk():
    c = TieredLRUCache(1000, memory_fraction=0.1)
    c.put(1, 60)
    c.put(2, 60)  # memory now over 100 -> 1 demoted
    assert c.tier_of(1) is Tier.DISK
    assert c.tier_of(2) is Tier.MEMORY


def test_disk_hit_reports_disk_then_promotes():
    c = TieredLRUCache(1000, memory_fraction=0.1)
    c.put(1, 60)
    c.put(2, 60)
    entry, tier = c.get(1)
    assert tier is Tier.DISK  # where it was served from
    assert c.tier_of(1) is Tier.MEMORY  # promoted afterwards
    assert c.tier_of(2) is Tier.DISK  # demoted to make room


def test_memory_hit_reports_memory():
    c = TieredLRUCache(1000, memory_fraction=0.5)
    c.put(1, 60)
    entry, tier = c.get(1)
    assert tier is Tier.MEMORY


def test_full_cache_evicts_from_disk_tail():
    c = TieredLRUCache(200, memory_fraction=0.25)  # memory 50
    c.put(1, 50)
    c.put(2, 50)
    c.put(3, 50)
    c.put(4, 50)
    evicted = c.put(5, 50)
    assert evicted == [1]
    assert 1 not in c and len(c) == 4


def test_oversized_object_rejected():
    c = TieredLRUCache(100, memory_fraction=0.1)
    c.put(1, 150)
    assert 1 not in c and c.used == 0


def test_object_larger_than_memory_tier_sits_alone_in_memory():
    c = TieredLRUCache(1000, memory_fraction=0.01)  # memory = 10
    c.put(1, 500)
    assert c.tier_of(1) is Tier.MEMORY  # newly served object is hot
    c.put(2, 400)
    assert c.tier_of(2) is Tier.MEMORY
    assert c.tier_of(1) is Tier.DISK


def test_refresh_replaces_in_place():
    c = TieredLRUCache(1000, memory_fraction=0.1)
    c.put(1, 60, version=0)
    c.put(1, 80, version=1)
    entry = c.peek(1)
    assert entry.size == 80 and entry.version == 1
    assert c.used == 80


def test_invalidate_fires_callback():
    c = TieredLRUCache(1000, memory_fraction=0.1)
    seen = []
    c.on_evict = seen.append
    c.put(1, 60)
    assert c.invalidate(1)
    assert seen == [1]
    assert not c.invalidate(1)


def test_eviction_fires_callback():
    c = TieredLRUCache(100, memory_fraction=0.5)
    seen = []
    c.on_evict = seen.append
    c.put(1, 60)
    c.put(2, 60)  # 1 demoted then evicted
    assert seen == [1]


def test_zero_memory_fraction_everything_on_disk_after_demotion():
    c = TieredLRUCache(200, memory_fraction=0.0)
    c.put(1, 50)
    # the single most recent object is allowed to remain in "memory"
    # (it is being served); inserting another demotes it fully.
    c.put(2, 50)
    assert c.tier_of(1) is Tier.DISK


def test_memory_fraction_one_never_touches_disk():
    c = TieredLRUCache(200, memory_fraction=1.0)
    c.put(1, 90)
    c.put(2, 90)
    assert c.tier_of(1) is Tier.MEMORY
    assert c.tier_of(2) is Tier.MEMORY
    evicted = c.put(3, 90)
    assert evicted == [1]


def test_validation_errors():
    with pytest.raises(ValueError):
        TieredLRUCache(-1, 0.1)
    with pytest.raises(ValueError):
        TieredLRUCache(100, 1.5)
    c = TieredLRUCache(100, 0.1)
    with pytest.raises(ValueError):
        c.put(1, -1)
