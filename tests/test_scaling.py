"""Unit and integration tests for :mod:`repro.core.scaling` (Figure 8)."""

import pytest

from repro.core.scaling import (
    PAPER_CLIENT_FRACTIONS,
    ScalingPoint,
    ScalingResult,
    run_scaling_experiment,
)
from repro.traces.profiles import small_paper_trace


def point(frac, hr_plb, hr_baps, bhr_plb=0.1, bhr_baps=0.2, **kw):
    return ScalingPoint(
        client_fraction=frac,
        n_clients=kw.get("n_clients", 10),
        n_requests=kw.get("n_requests", 100),
        hit_ratio_plb=hr_plb,
        hit_ratio_baps=hr_baps,
        byte_hit_ratio_plb=bhr_plb,
        byte_hit_ratio_baps=bhr_baps,
    )


# -- ScalingPoint ------------------------------------------------------------


def test_increment_is_relative_improvement():
    p = point(0.5, hr_plb=0.40, hr_baps=0.50)
    assert p.hit_ratio_increment == pytest.approx((0.50 - 0.40) / 0.40)
    assert p.byte_hit_ratio_increment == pytest.approx((0.2 - 0.1) / 0.1)


def test_increment_guards_division_by_zero():
    p = point(0.25, hr_plb=0.0, hr_baps=0.3, bhr_plb=0.0)
    assert p.hit_ratio_increment == 0.0
    assert p.byte_hit_ratio_increment == 0.0


def test_increment_can_be_negative():
    p = point(1.0, hr_plb=0.5, hr_baps=0.4)
    assert p.hit_ratio_increment < 0


# -- ScalingResult -----------------------------------------------------------


def _curve(*hr_pairs):
    points = [
        point(frac, hr_plb, hr_baps)
        for frac, (hr_plb, hr_baps) in zip(PAPER_CLIENT_FRACTIONS, hr_pairs)
    ]
    return ScalingResult(trace_name="t", points=points)


def test_increments_preserve_fraction_order():
    r = _curve((0.4, 0.44), (0.4, 0.48), (0.4, 0.52), (0.4, 0.56))
    fracs = [f for f, _ in r.increments()]
    assert fracs == list(PAPER_CLIENT_FRACTIONS)
    incs = [inc for _, inc in r.increments()]
    assert incs == sorted(incs)


def test_is_monotonic_detects_growth_and_dips():
    growing = _curve((0.4, 0.44), (0.4, 0.48), (0.4, 0.52), (0.4, 0.56))
    assert growing.is_monotonic()
    dipping = _curve((0.4, 0.48), (0.4, 0.44), (0.4, 0.52), (0.4, 0.56))
    assert not dipping.is_monotonic()
    # slack forgives a dip smaller than its magnitude
    assert dipping.is_monotonic(slack=1.0)


def test_is_monotonic_supports_byte_metric():
    r = _curve((0.4, 0.44), (0.4, 0.48))
    # byte columns are constant in the helper -> flat is monotonic
    assert r.is_monotonic(metric="byte_hit_ratio")


def test_table_renders_every_point():
    r = _curve((0.4, 0.44), (0.4, 0.48), (0.4, 0.52), (0.4, 0.56))
    text = r.table()
    assert "t: client scaling" in text
    for frac in PAPER_CLIENT_FRACTIONS:
        assert f"{frac * 100:g}%" in text


# -- integration through the Simulator ---------------------------------------


def test_run_scaling_experiment_end_to_end():
    """Replays real subsets through the Simulator: capacities frozen
    from the full trace, per-point request counts growing with the
    client fraction, and the 100% point covering the whole trace."""
    trace = small_paper_trace("NLANR-uc", n_requests=2_000)
    result = run_scaling_experiment(trace, client_fractions=(0.25, 0.5, 1.0))
    assert result.trace_name == trace.name
    assert [p.client_fraction for p in result.points] == [0.25, 0.5, 1.0]
    n_clients = [p.n_clients for p in result.points]
    n_requests = [p.n_requests for p in result.points]
    assert n_clients == sorted(n_clients)
    assert n_requests == sorted(n_requests)
    assert result.points[-1].n_requests == len(trace)
    for p in result.points:
        for value in (
            p.hit_ratio_plb,
            p.hit_ratio_baps,
            p.byte_hit_ratio_plb,
            p.byte_hit_ratio_baps,
        ):
            assert 0.0 <= value <= 1.0
        # sharing browser contents can only add hit opportunities
        assert p.hit_ratio_baps >= p.hit_ratio_plb


def test_run_scaling_experiment_forwards_config_overrides():
    trace = small_paper_trace("NLANR-uc", n_requests=1_000)
    plain = run_scaling_experiment(trace, client_fractions=(1.0,))
    throttled = run_scaling_experiment(
        trace, client_fractions=(1.0,), holder_availability=0.0
    )
    # with every holder offline, BAPS degrades toward PLB
    assert (
        throttled.points[0].hit_ratio_baps <= plain.points[0].hit_ratio_baps
    )
