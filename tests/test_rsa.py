"""RSA key generation, signatures, and primality testing."""

import pytest

from repro.security.md5 import md5_digest
from repro.security.rsa import (
    RSAKeyPair,
    generate_keypair,
    is_probable_prime,
    rsa_decrypt_int,
    rsa_encrypt_int,
)


@pytest.fixture(scope="module")
def keypair() -> RSAKeyPair:
    return generate_keypair(bits=256, seed=7)


def test_keypair_shape(keypair):
    assert keypair.bits in (255, 256)
    assert keypair.e == 65537
    assert keypair.max_message_bytes >= 16  # must fit an MD5 digest


def test_deterministic_generation():
    a = generate_keypair(bits=256, seed=11)
    b = generate_keypair(bits=256, seed=11)
    assert (a.n, a.e, a.d) == (b.n, b.e, b.d)
    c = generate_keypair(bits=256, seed=12)
    assert c.n != a.n


def test_encrypt_decrypt_roundtrip(keypair):
    m = 123456789
    c = rsa_encrypt_int(m, keypair.public)
    assert c != m
    assert rsa_decrypt_int(c, keypair) == m


def test_sign_verify(keypair):
    digest = md5_digest(b"web document")
    sig = keypair.sign(digest)
    assert keypair.verify(digest, sig)


def test_verify_rejects_tampered_digest(keypair):
    sig = keypair.sign(md5_digest(b"original"))
    assert not keypair.verify(md5_digest(b"tampered"), sig)


def test_verify_rejects_tampered_signature(keypair):
    digest = md5_digest(b"original")
    sig = keypair.sign(digest)
    assert not keypair.verify(digest, sig + 1)
    assert not keypair.verify(digest, -1)
    assert not keypair.verify(digest, keypair.n + 5)


def test_recover_roundtrip(keypair):
    digest = md5_digest(b"doc")
    sig = keypair.sign(digest)
    assert keypair.recover(sig) == digest.lstrip(b"\x00") or keypair.recover(sig) == digest


def test_sign_rejects_oversized_message(keypair):
    too_big = b"\xff" * (keypair.max_message_bytes + 8)
    with pytest.raises(ValueError):
        keypair.sign(too_big)


def test_encrypt_range_checks(keypair):
    with pytest.raises(ValueError):
        rsa_encrypt_int(-1, keypair.public)
    with pytest.raises(ValueError):
        rsa_encrypt_int(keypair.n, keypair.public)
    with pytest.raises(ValueError):
        rsa_decrypt_int(keypair.n + 1, keypair)


def test_different_keys_cannot_verify():
    a = generate_keypair(bits=256, seed=1)
    b = generate_keypair(bits=256, seed=2)
    digest = md5_digest(b"doc")
    sig = a.sign(digest)
    assert not b.verify(digest, sig)


def test_generate_rejects_tiny_modulus():
    with pytest.raises(ValueError):
        generate_keypair(bits=32)


# -- Miller-Rabin -----------------------------------------------------------

SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 101, 7919, 104729]
SMALL_COMPOSITES = [0, 1, 4, 9, 15, 100, 561, 1105, 7917, 104730]
CARMICHAELS = [561, 1105, 1729, 2465, 2821, 6601, 8911]


@pytest.mark.parametrize("p", SMALL_PRIMES)
def test_primes_accepted(p):
    assert is_probable_prime(p)


@pytest.mark.parametrize("c", SMALL_COMPOSITES + CARMICHAELS)
def test_composites_rejected(c):
    assert not is_probable_prime(c)


def test_large_known_prime():
    # 2^127 - 1 is a Mersenne prime.
    assert is_probable_prime(2**127 - 1)
    assert not is_probable_prime(2**127 - 3)
