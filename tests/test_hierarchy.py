"""Cooperative proxy hierarchy substrate tests."""

import numpy as np
import pytest

from repro.core.events import HitLocation
from repro.hierarchy import HierarchyConfig, ICPModel, ICPStats, simulate_hierarchy
from repro.traces.record import Trace


def build(rows):
    return Trace(
        timestamps=np.arange(len(rows), dtype=float),
        clients=np.array([r[0] for r in rows]),
        docs=np.array([r[1] for r in rows]),
        sizes=np.array([r[2] for r in rows]),
        versions=np.zeros(len(rows), dtype=np.int64),
        name="hand",
    )


# -- ICP model --------------------------------------------------------------


def test_icp_round_costs():
    icp = ICPModel(query_latency=0.002, timeout=0.05)
    assert icp.round_cost(3, any_hit=True) == pytest.approx(0.004)
    assert icp.round_cost(3, any_hit=False) == pytest.approx(0.05)
    assert icp.round_cost(0, any_hit=True) == 0.0


def test_icp_accounting():
    icp = ICPModel()
    stats = ICPStats()
    icp.account(stats, 3, any_hit=True)
    icp.account(stats, 3, any_hit=False)
    assert stats.queries_sent == 6
    assert stats.query_rounds == 2
    assert stats.hits == 1 and stats.misses == 1
    assert stats.total_overhead_time == pytest.approx(
        icp.round_cost(3, True) + icp.round_cost(3, False)
    )


def test_icp_validation():
    with pytest.raises(ValueError):
        ICPModel(timeout=0)
    with pytest.raises(ValueError):
        ICPModel(query_latency=-1)


# -- config --------------------------------------------------------------------


def test_config_partitioning():
    cfg = HierarchyConfig(n_leaves=3, leaf_capacity=100)
    assert [cfg.leaf_of(c, 9) for c in range(6)] == [0, 1, 2, 0, 1, 2]
    blocks = HierarchyConfig(n_leaves=3, leaf_capacity=100, partition="blocks")
    assert [blocks.leaf_of(c, 9) for c in range(9)] == [0, 0, 0, 1, 1, 1, 2, 2, 2]


def test_config_validation():
    with pytest.raises(ValueError):
        HierarchyConfig(n_leaves=0, leaf_capacity=1)
    with pytest.raises(ValueError):
        HierarchyConfig(n_leaves=1, leaf_capacity=1, siblings=True)
    with pytest.raises(ValueError):
        HierarchyConfig(n_leaves=2, leaf_capacity=1, partition="random")


def test_total_capacity():
    cfg = HierarchyConfig(n_leaves=4, leaf_capacity=100, parent_capacity=50)
    assert cfg.total_proxy_capacity == 450


# -- simulator -------------------------------------------------------------------


def test_leaf_hit():
    # clients 0 and 2 share leaf 0 under interleave with 2 leaves
    t = build([(0, 5, 100), (2, 5, 100)])
    r = simulate_hierarchy(t, HierarchyConfig(n_leaves=2, leaf_capacity=1000))
    assert r.by_location[HitLocation.PROXY].hits == 1
    assert r.by_location[HitLocation.ORIGIN].misses == 1


def test_no_cooperation_means_miss_across_leaves():
    # clients 0 and 1 are on different leaves; without siblings the
    # second request misses.
    t = build([(0, 5, 100), (1, 5, 100)])
    r = simulate_hierarchy(t, HierarchyConfig(n_leaves=2, leaf_capacity=1000))
    assert r.by_location[HitLocation.ORIGIN].misses == 2


def test_sibling_hit():
    t = build([(0, 5, 100), (1, 5, 100)])
    r = simulate_hierarchy(
        t, HierarchyConfig(n_leaves=2, leaf_capacity=1000, siblings=True)
    )
    assert r.by_location[HitLocation.SIBLING_PROXY].hits == 1


def test_sibling_fetch_cached_at_requesting_leaf():
    t = build([(0, 5, 100), (1, 5, 100), (1, 5, 100)])
    r = simulate_hierarchy(
        t, HierarchyConfig(n_leaves=2, leaf_capacity=1000, siblings=True)
    )
    # third request hits leaf 1's own cache now
    assert r.by_location[HitLocation.PROXY].hits == 1


def test_sibling_fetch_not_cached_when_disabled():
    t = build([(0, 5, 100), (1, 5, 100), (1, 5, 100)])
    r = simulate_hierarchy(
        t,
        HierarchyConfig(
            n_leaves=2, leaf_capacity=1000, siblings=True, cache_sibling_fetches=False
        ),
    )
    assert r.by_location[HitLocation.SIBLING_PROXY].hits == 2


def test_parent_hit():
    t = build([(0, 5, 100), (1, 5, 100)])
    r = simulate_hierarchy(
        t, HierarchyConfig(n_leaves=2, leaf_capacity=1000, parent_capacity=1000)
    )
    assert r.by_location[HitLocation.PARENT_PROXY].hits == 1


def test_browser_in_front_of_leaf():
    t = build([(0, 5, 100), (0, 5, 100)])
    r = simulate_hierarchy(
        t, HierarchyConfig(n_leaves=2, leaf_capacity=1000, browser_capacity=1000)
    )
    assert r.by_location[HitLocation.LOCAL_BROWSER].hits == 1


def test_icp_stats_collected(small_trace):
    from repro.hierarchy import HierarchySimulator

    cfg = HierarchyConfig(n_leaves=4, leaf_capacity=200_000, siblings=True)
    sim = HierarchySimulator(small_trace, cfg)
    r = sim.run()
    assert sim.icp_stats.query_rounds > 0
    assert sim.icp_stats.queries_sent == 3 * sim.icp_stats.query_rounds
    assert r.n_requests == len(small_trace)


def test_hierarchy_conservation(small_trace):
    cfg = HierarchyConfig(
        n_leaves=4, leaf_capacity=100_000, parent_capacity=200_000, siblings=True
    )
    r = simulate_hierarchy(small_trace, cfg)
    total_hits = sum(s.hits for loc, s in r.by_location.items() if loc is not HitLocation.ORIGIN)
    assert total_hits + r.by_location[HitLocation.ORIGIN].misses == len(small_trace)


def test_cooperation_never_hurts_hit_ratio(small_trace):
    base = HierarchyConfig(n_leaves=4, leaf_capacity=100_000)
    coop = HierarchyConfig(n_leaves=4, leaf_capacity=100_000, siblings=True)
    r_base = simulate_hierarchy(small_trace, base)
    r_coop = simulate_hierarchy(small_trace, coop)
    assert r_coop.hit_ratio >= r_base.hit_ratio
