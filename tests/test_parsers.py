"""Log-format parsers: Squid/NLANR, BU, CA*netII."""

import numpy as np
import pytest

from repro.traces.bu import parse_bu_log, write_bu_log
from repro.traces.canet import concatenate, parse_canet_log, write_canet_log
from repro.traces.squid import parse_squid_log, write_squid_log

SQUID_LOG = """\
963561600.123 45 client-a TCP_MISS/200 8192 GET http://x.example/a - DIRECT/x text/html
963561601.000 10 client-b TCP_HIT/200 512 GET http://x.example/b - NONE/- image/gif
963561602.500 99 client-a TCP_MISS/304 100 GET http://x.example/a - DIRECT/x text/html
963561603.000 12 client-a TCP_MISS/200 0 GET http://x.example/zero - DIRECT/x text/html
963561604.000 12 client-c TCP_MISS/200 400 POST http://x.example/form - DIRECT/x text/html
963561605.000 12 client-b TCP_MISS/404 99 GET http://x.example/missing - DIRECT/x text/html
963561606.000 12 client-b TCP_MISS/200 9000 GET http://x.example/a - DIRECT/x text/html
"""


def test_parse_squid_basic():
    t = parse_squid_log(SQUID_LOG, name="sq")
    # kept: lines 1,2,3,7 (GET, 2xx/3xx, size>0)
    assert len(t) == 4
    assert t.n_clients == 2  # client-a, client-b
    assert t.n_docs == 2  # /a and /b


def test_parse_squid_version_bump_on_size_change():
    t = parse_squid_log(SQUID_LOG)
    # doc /a appears with sizes 8192, 100, 9000 -> versions 0, 1, 2
    a_rows = [(r.size, r.version) for r in t if t.url_of(r.doc).endswith("/a")]
    assert a_rows == [(8192, 0), (100, 1), (9000, 2)]


def test_parse_squid_skips_malformed_lines():
    junk = "this is not a log line\n963561600.1 10\n" + SQUID_LOG
    assert len(parse_squid_log(junk)) == 4


def test_parse_squid_strict_raises():
    with pytest.raises(ValueError, match="malformed"):
        parse_squid_log("garbage line\n", strict=True)


def test_parse_squid_comments_and_blanks_ignored():
    assert len(parse_squid_log("# comment\n\n")) == 0


def test_squid_roundtrip(tmp_path, small_trace):
    path = tmp_path / "access.log"
    write_squid_log(small_trace, path)
    back = parse_squid_log(path, name="rt")
    assert len(back) == len(small_trace)
    assert back.n_clients == small_trace.n_clients
    assert back.n_docs == small_trace.n_docs
    assert np.array_equal(back.sizes, small_trace.sizes)
    # version structure is re-derived from size changes and must match
    # the original versions' hit/miss semantics
    assert np.array_equal(back.versions > 0, small_trace.versions > 0)


BU_LOG = """\
beaker s1 794397473.5 http://cs-www.bu.edu/ 2009 0.5
beaker s1 794397500.0 http://cs-www.bu.edu/faculty 4000 0.3
piper  s2 794397510.0 http://cs-www.bu.edu/ 2009 0.1
piper 794397520.0 http://cs-www.bu.edu/five-field 100 0.1
beaker s1 794397530.0 ftp://not-http/ 50 0.1
beaker s1 794397540.0 http://cs-www.bu.edu/zero 0 0.1
"""


def test_parse_bu_basic():
    t = parse_bu_log(BU_LOG)
    assert len(t) == 4  # ftp and zero-size dropped; 5-field line kept
    assert t.n_clients == 2
    assert t.n_docs == 3


def test_bu_strict():
    with pytest.raises(ValueError):
        parse_bu_log("one two\n", strict=True)


def test_bu_roundtrip(tmp_path, small_trace):
    path = tmp_path / "bu.log"
    write_bu_log(small_trace, path)
    back = parse_bu_log(path)
    assert len(back) == len(small_trace)
    assert back.n_clients == small_trace.n_clients
    assert np.array_equal(back.sizes, small_trace.sizes)


def test_canet_is_squid_format():
    t = parse_canet_log(SQUID_LOG, name="canet")
    assert len(t) == 4


def test_canet_roundtrip(tmp_path, small_trace):
    path = tmp_path / "canet.log"
    write_canet_log(small_trace, path)
    assert len(parse_canet_log(path)) == len(small_trace)


def test_concatenate_two_days(tmp_path, small_trace):
    """The paper concatenates two CA*netII days; ids unify by URL."""
    p1 = tmp_path / "day1.log"
    p2 = tmp_path / "day2.log"
    write_canet_log(small_trace, p1)
    write_canet_log(small_trace, p2)
    day1 = parse_canet_log(p1, name="d1")
    day2 = parse_canet_log(p2, name="d2")
    both = concatenate([day1, day2])
    assert len(both) == 2 * len(small_trace)
    # same URL universe -> doc count does not double
    assert both.n_docs == day1.n_docs
    assert (np.diff(both.timestamps) >= 0).all()


def test_concatenate_single():
    t = parse_squid_log(SQUID_LOG)
    assert concatenate([t]) is t
    with pytest.raises(ValueError):
        concatenate([])


def test_concatenate_rederives_versions():
    t = parse_squid_log(SQUID_LOG)
    both = concatenate([t, t])
    # doc /a sizes across the join: 8192,100,9000,8192,100,9000
    # -> versions 0,1,2,3,4,5 (every size change is a new version)
    a_vers = [r.version for r in both if both.url_of(r.doc).endswith("/a")]
    assert a_vers == [0, 1, 2, 3, 4, 5]


# -- lenient parsing: errors mode + ParseReport ------------------------------


def test_errors_skip_quarantines_into_report():
    from repro.traces import ParseReport

    junk = "this is not a log line\n963561600.1 10\n" + SQUID_LOG
    report = ParseReport()
    t = parse_squid_log(junk, errors="skip", report=report)
    assert len(t) == 4
    assert report.parsed == 4
    assert report.skipped == 2
    assert not report.ok
    assert [lineno for lineno, _ in report.samples] == [1, 2]
    assert "not a log line" in report.samples[0][1]
    assert "2 malformed" in report.summary()


def test_errors_raise_matches_strict():
    with pytest.raises(ValueError, match="malformed"):
        parse_squid_log("garbage line\n", errors="raise")
    # an explicit mode wins over the legacy flag
    t = parse_squid_log("garbage line\n" + SQUID_LOG, strict=True, errors="skip")
    assert len(t) == 4


def test_errors_mode_validated():
    with pytest.raises(ValueError, match="errors must be one of"):
        parse_squid_log(SQUID_LOG, errors="ignore")


def test_report_samples_capped():
    from repro.traces import ParseReport

    junk = "\n".join(f"bad line {i}" for i in range(25))
    report = ParseReport()
    parse_squid_log(junk, errors="skip", report=report)
    assert report.skipped == 25
    assert len(report.samples) == ParseReport.MAX_SAMPLES


def test_report_clean_parse():
    from repro.traces import ParseReport

    report = ParseReport()
    parse_squid_log(SQUID_LOG, report=report)
    assert report.ok
    assert report.skipped == 0
    assert "no malformed" in report.summary()


def test_bu_errors_skip_report():
    from repro.traces import ParseReport

    log = (
        "beaker s0 794397473.5 http://cs-www.bu.edu/ 2009 0.5\n"
        "torn-record-without-fields\n"
        "beaker s0 notatime http://cs-www.bu.edu/x 10 0.5\n"
    )
    report = ParseReport()
    t = parse_bu_log(log, errors="skip", report=report)
    assert len(t) == 1
    assert report.skipped == 2
    with pytest.raises(ValueError, match="malformed"):
        parse_bu_log(log, errors="raise")


def test_canet_forwards_errors_and_report():
    from repro.traces import ParseReport

    report = ParseReport()
    t = parse_canet_log("junk\n" + SQUID_LOG, errors="skip", report=report)
    assert len(t) == 4
    assert report.skipped == 1
    with pytest.raises(ValueError, match="malformed"):
        parse_canet_log("junk\n", errors="raise")
