"""Digital watermark (paper §6.1) — integrity protocol tests."""

import pytest

from repro.security.md5 import md5_digest
from repro.security.rsa import generate_keypair
from repro.security.watermark import (
    Watermark,
    WatermarkAuthority,
    WatermarkError,
    verify_watermark,
)


@pytest.fixture(scope="module")
def authority() -> WatermarkAuthority:
    return WatermarkAuthority(generate_keypair(bits=256, seed=99))


DOC = b"<html><body>a cached web document</body></html>"


def test_create_and_verify(authority):
    mark = authority.create(DOC)
    verify_watermark(DOC, mark, authority.public)  # must not raise
    authority.verify(DOC, mark)


def test_watermark_digest_matches_md5(authority):
    mark = authority.create(DOC)
    assert mark.digest == md5_digest(DOC)


def test_tampered_document_detected(authority):
    mark = authority.create(DOC)
    with pytest.raises(WatermarkError, match="digest does not match"):
        verify_watermark(DOC + b"!", mark, authority.public)


def test_forged_watermark_detected(authority):
    """A client cannot mint a watermark for its own modified content:
    it can compute the MD5 digest but not the proxy's signature."""
    evil_doc = DOC + b"<script>evil</script>"
    forged = Watermark(digest=md5_digest(evil_doc), signature=12345)
    with pytest.raises(WatermarkError, match="not produced by the proxy"):
        verify_watermark(evil_doc, forged, authority.public)


def test_signature_from_other_key_rejected(authority):
    other = generate_keypair(bits=256, seed=55)
    mark = Watermark(digest=md5_digest(DOC), signature=other.sign(md5_digest(DOC)))
    with pytest.raises(WatermarkError):
        verify_watermark(DOC, mark, authority.public)


def test_watermark_digest_length_validated():
    with pytest.raises(ValueError):
        Watermark(digest=b"short", signature=1)


def test_authority_requires_adequate_key():
    with pytest.raises(ValueError):
        WatermarkAuthority(generate_keypair(bits=96, seed=1))


def test_watermark_transferable_between_clients(authority):
    """The §6.1 flow: the proxy watermarks once; any later receiving
    client can verify with only the public key."""
    mark = authority.create(DOC)
    public_only = authority.public  # what clients know
    verify_watermark(DOC, mark, public_only)
