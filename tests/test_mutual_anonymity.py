"""Mutual-anonymity variants (HPL-2001-204): shortcut response and
crowds-style forwarding."""

import pytest

from repro.security import CrowdsStyleForwarder, ShortcutResponseProtocol
from repro.security.anonymity import AnonymityError, PeerEndpoint

DOC = b"a shared cached document " * 10


@pytest.fixture(scope="module")
def peers():
    return [PeerEndpoint.create(f"peer{i}", seed=100 + i, bits=256) for i in range(5)]


# -- shortcut response -----------------------------------------------------------


def test_shortcut_delivers_document(peers):
    proto = ShortcutResponseProtocol(seed=1)
    holder, requester = peers[0], peers[1]
    holder.store[7] = DOC
    assert proto.exchange(requester, holder, 7) == DOC


def test_shortcut_proxy_never_carries_content(peers):
    proto = ShortcutResponseProtocol(seed=1)
    holder, requester = peers[0], peers[1]
    holder.store[7] = DOC
    proto.exchange(requester, holder, 7)
    for msg in proto.transcript:
        if proto.name in (msg.sender, msg.receiver):
            assert DOC not in msg.payload


def test_shortcut_identities_hidden(peers):
    proto = ShortcutResponseProtocol(seed=1)
    holder, requester = peers[0], peers[1]
    holder.store[7] = DOC
    proto.exchange(requester, holder, 7)
    # the holder only ever talks to the proxy or the broadcast channel
    for msg in proto.transcript:
        if msg.sender == holder.name or msg.receiver == holder.name:
            assert requester.name not in (msg.sender, msg.receiver)
            assert requester.name.encode() not in msg.payload
    # the response frame is a LAN broadcast, addressed to nobody
    responses = [m for m in proto.transcript if m.kind == "response"]
    assert responses and responses[0].receiver == "*broadcast*"


def test_shortcut_broadcast_is_ciphertext(peers):
    proto = ShortcutResponseProtocol(seed=1)
    holder, requester = peers[0], peers[1]
    holder.store[7] = DOC
    proto.exchange(requester, holder, 7)
    assert DOC not in proto.broadcasts[0]


def test_shortcut_missing_document(peers):
    proto = ShortcutResponseProtocol(seed=1)
    with pytest.raises(AnonymityError):
        proto.exchange(peers[1], peers[2], 404)


def test_shortcut_multiple_exchanges_use_distinct_tags(peers):
    proto = ShortcutResponseProtocol(seed=1)
    holder = peers[0]
    holder.store[7] = DOC
    holder.store[8] = DOC[::-1]
    a = proto.exchange(peers[1], holder, 7)
    b = proto.exchange(peers[2], holder, 8)
    assert a == DOC and b == DOC[::-1]
    tags = {f[:16] for f in proto.broadcasts}
    assert len(tags) == 2


# -- crowds-style forwarding ---------------------------------------------------------


def test_crowds_delivers_document(peers):
    peers[0].store[9] = DOC
    crowd = CrowdsStyleForwarder(peers=peers, forward_probability=0.5, seed=3)
    doc, hops = crowd.route(peers[2], peers[0], 9)
    assert doc == DOC
    assert hops >= 0


def test_crowds_submitter_varies_with_seed(peers):
    peers[0].store[9] = DOC
    submitters = set()
    for seed in range(12):
        crowd = CrowdsStyleForwarder(peers=peers, forward_probability=0.8, seed=seed)
        crowd.route(peers[2], peers[0], 9)
        submitters.add(crowd.predecessor_of_submit())
    # the holder cannot pin down the initiator: multiple distinct
    # predecessors appear across runs
    assert len(submitters) >= 2


def test_crowds_zero_forwarding_submits_directly(peers):
    peers[0].store[9] = DOC
    crowd = CrowdsStyleForwarder(peers=peers, forward_probability=0.0, seed=1)
    doc, hops = crowd.route(peers[3], peers[0], 9)
    assert hops == 0
    assert crowd.predecessor_of_submit() == peers[3].name


def test_crowds_validation(peers):
    with pytest.raises(ValueError):
        CrowdsStyleForwarder(peers=peers, forward_probability=1.5)
    with pytest.raises(AnonymityError):
        CrowdsStyleForwarder(peers=peers[:1])
    crowd = CrowdsStyleForwarder(peers=peers, seed=1)
    with pytest.raises(AnonymityError):
        crowd.route(peers[1], peers[0], 404)
    with pytest.raises(AnonymityError):
        CrowdsStyleForwarder(peers=peers, seed=1).predecessor_of_submit()


def test_crowds_path_bounded(peers):
    peers[0].store[9] = DOC
    crowd = CrowdsStyleForwarder(peers=peers, forward_probability=0.99, seed=5)
    _, hops = crowd.route(peers[1], peers[0], 9)
    assert hops <= 65
