"""CLI and experiment-runner plumbing."""

import pytest

from repro.cli import main
from repro.experiments.runner import ALL_EXPERIMENTS, run_experiment


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("table1", "fig2", "fig8", "security"):
        assert name in out


def test_unknown_experiment_errors(capsys):
    assert main(["run", "fig99"]) == 2
    err = capsys.readouterr().err
    assert "fig99" in err


def test_run_experiment_unknown():
    with pytest.raises(KeyError, match="unknown experiment"):
        run_experiment("nope")


def test_all_experiments_registry_complete():
    expected = {
        "table1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "overhead",
        "memory-hit",
        "index-space",
        "staleness",
        "security",
        "ablation-replacement",
        "ablation-index",
        "hierarchy",
        "consistency",
        "prefetch",
        "availability",
        "churn",
        "recovery",
        "federation",
        "chaos",
        "stress",
    }
    assert set(ALL_EXPERIMENTS) == expected


def test_simulate_with_log(tmp_path, capsys, small_trace):
    from repro.traces.squid import write_squid_log

    path = tmp_path / "access.log"
    write_squid_log(small_trace, path)
    assert main(["simulate", "--log", str(path), "--proxy-frac", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "hit ratio" in out
    assert "remote-browser share" in out


def test_simulate_failure_model_flags(tmp_path, capsys, small_trace):
    from repro.traces.squid import write_squid_log

    path = tmp_path / "access.log"
    write_squid_log(small_trace, path)
    assert main(
        [
            "simulate",
            "--log",
            str(path),
            "--proxy-frac",
            "0.1",
            "--churn",
            "--churn-on",
            "60",
            "--churn-off",
            "60",
            "--max-holder-retries",
            "2",
            "--corruption-rate",
            "0.5",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "hit ratio" in out


def test_simulate_proxy_crash_flags(tmp_path, capsys, small_trace):
    from repro.traces.squid import write_squid_log

    path = tmp_path / "access.log"
    write_squid_log(small_trace, path)
    duration = float(small_trace.timestamps.max())
    assert main(
        [
            "simulate",
            "--log",
            str(path),
            "--proxy-frac",
            "0.1",
            "--proxy-crash-at",
            f"{0.35 * duration:.0f},{0.7 * duration:.0f}",
            "--checkpoint-interval",
            f"{duration / 24:.0f}",
            "--reannounce-rate",
            "0.02",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "proxy crashes" in out
    assert "hits lost to recovery" in out
    assert "checkpoint bytes written" in out


def test_simulate_rejects_both_crash_sources(capsys):
    with pytest.raises(SystemExit):
        main(
            [
                "simulate",
                "--proxy-crash-rate",
                "0.01",
                "--proxy-crash-at",
                "100",
            ]
        )
    assert "not allowed with" in capsys.readouterr().err


def test_simulate_rejects_malformed_crash_times(tmp_path, capsys, small_trace):
    from repro.traces.squid import write_squid_log

    path = tmp_path / "access.log"
    write_squid_log(small_trace, path)
    assert (
        main(["simulate", "--log", str(path), "--proxy-crash-at", "10,zap"]) == 2
    )
    assert "comma-separated numbers" in capsys.readouterr().err


def test_simulate_empty_log(tmp_path, capsys):
    path = tmp_path / "empty.log"
    path.write_text("# nothing cacheable\n")
    assert main(["simulate", "--log", str(path)]) == 1


def test_parse_command(tmp_path, capsys, small_trace):
    from repro.traces.squid import write_squid_log

    path = tmp_path / "access.log"
    write_squid_log(small_trace, path)
    assert main(["parse", str(path)]) == 0
    out = capsys.readouterr().out
    assert "Max Hit Ratio" in out


@pytest.mark.slow
def test_simulate_paper_trace(capsys):
    assert main(
        ["simulate", "--trace", "CAnetII", "-o", "proxy-cache-only", "--proxy-frac", "0.05"]
    ) == 0
    out = capsys.readouterr().out
    assert "proxy-cache-only" in out


@pytest.mark.slow
def test_traces_command_prints_table1(capsys):
    assert main(["traces"]) == 0
    out = capsys.readouterr().out
    assert "NLANR-uc" in out
    assert "Max Hit Ratio" in out


@pytest.mark.slow
def test_run_command_table1(capsys):
    assert main(["run", "table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "BU-95" in out


def test_run_fig2_mrc_sampled(capsys):
    assert main(["run", "fig2", "--mrc", "--sample-rate", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "browsers-aware-proxy-server" in out


def test_run_rejects_sample_rate_without_mrc(capsys):
    assert main(["run", "fig2", "--sample-rate", "0.05"]) == 2
    assert "requires --mrc" in capsys.readouterr().err


def test_run_rejects_mrc_with_fault_tolerance_flags(capsys):
    assert main(["run", "fig2", "--mrc", "--retries", "2"]) == 2
    assert "do not apply" in capsys.readouterr().err
