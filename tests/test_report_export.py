"""Consolidated report export (``baps report``)."""

from repro.cli import main
from repro.experiments.export import RESULTS_ORDER, collect_report


def test_collect_report_with_tables(tmp_path):
    (tmp_path / "table1.txt").write_text("TABLE-ONE-ROWS")
    (tmp_path / "fig2.txt").write_text("FIG-TWO-ROWS")
    (tmp_path / "custom_extra.txt").write_text("EXTRA-ROWS")
    text = collect_report(tmp_path)
    assert "TABLE-ONE-ROWS" in text
    assert "FIG-TWO-ROWS" in text
    assert "EXTRA-ROWS" in text  # unknown tables still included
    assert "Table 1" in text
    # table1 comes before fig2 (presentation order)
    assert text.index("TABLE-ONE-ROWS") < text.index("FIG-TWO-ROWS")
    # missing artifacts are listed, not silently dropped
    assert "Not yet generated" in text
    assert "fig8" in text


def test_collect_report_empty_dir(tmp_path):
    text = collect_report(tmp_path / "nowhere")
    assert "Not yet generated" in text
    for name in RESULTS_ORDER:
        assert name in text


def test_cli_report_to_file(tmp_path, capsys):
    results = tmp_path / "results"
    results.mkdir()
    (results / "fig7.txt").write_text("LIMIT-CASE")
    out = tmp_path / "report.md"
    code = main(
        ["report", "--results-dir", str(results), "--output", str(out)]
    )
    assert code == 0
    assert "LIMIT-CASE" in out.read_text()


def test_cli_report_stdout(tmp_path, capsys):
    results = tmp_path / "results"
    results.mkdir()
    (results / "fig7.txt").write_text("LIMIT-CASE")
    assert main(["report", "--results-dir", str(results)]) == 0
    assert "LIMIT-CASE" in capsys.readouterr().out
