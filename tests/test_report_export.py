"""Consolidated report export (``baps report``) and atomic file exports."""

import pathlib

import pytest

from repro.cli import main
from repro.experiments.export import RESULTS_ORDER, collect_report


def test_collect_report_with_tables(tmp_path):
    (tmp_path / "table1.txt").write_text("TABLE-ONE-ROWS")
    (tmp_path / "fig2.txt").write_text("FIG-TWO-ROWS")
    (tmp_path / "custom_extra.txt").write_text("EXTRA-ROWS")
    text = collect_report(tmp_path)
    assert "TABLE-ONE-ROWS" in text
    assert "FIG-TWO-ROWS" in text
    assert "EXTRA-ROWS" in text  # unknown tables still included
    assert "Table 1" in text
    # table1 comes before fig2 (presentation order)
    assert text.index("TABLE-ONE-ROWS") < text.index("FIG-TWO-ROWS")
    # missing artifacts are listed, not silently dropped
    assert "Not yet generated" in text
    assert "fig8" in text


def test_collect_report_empty_dir(tmp_path):
    text = collect_report(tmp_path / "nowhere")
    assert "Not yet generated" in text
    for name in RESULTS_ORDER:
        assert name in text


def test_cli_report_to_file(tmp_path, capsys):
    results = tmp_path / "results"
    results.mkdir()
    (results / "fig7.txt").write_text("LIMIT-CASE")
    out = tmp_path / "report.md"
    code = main(
        ["report", "--results-dir", str(results), "--output", str(out)]
    )
    assert code == 0
    assert "LIMIT-CASE" in out.read_text()


def test_cli_report_stdout(tmp_path, capsys):
    results = tmp_path / "results"
    results.mkdir()
    (results / "fig7.txt").write_text("LIMIT-CASE")
    assert main(["report", "--results-dir", str(results)]) == 0
    assert "LIMIT-CASE" in capsys.readouterr().out


# -- atomic export discipline -------------------------------------------------


def test_atomic_write_replaces_previous_content(tmp_path):
    from repro.experiments.export import atomic_write_text

    target = tmp_path / "out" / "fig.txt"
    atomic_write_text(target, "first")
    atomic_write_text(target, "second")
    assert target.read_text() == "second"
    # no temp droppings left behind
    assert [p.name for p in target.parent.iterdir()] == ["fig.txt"]


def test_atomic_write_exception_keeps_original(tmp_path):
    from repro.experiments.export import atomic_writer

    target = tmp_path / "fig.txt"
    target.write_text("intact")
    with pytest.raises(RuntimeError):
        with atomic_writer(target) as fh:
            fh.write("half a tab")
            raise RuntimeError("writer died")
    assert target.read_text() == "intact"
    assert [p.name for p in tmp_path.iterdir()] == ["fig.txt"]


def test_atomic_export_json_and_csv(tmp_path):
    import json

    from repro.experiments.export import export_csv, export_json

    jpath = tmp_path / "cells.json"
    export_json(jpath, {"b": 2, "a": 1})
    assert json.loads(jpath.read_text()) == {"a": 1, "b": 2}
    cpath = tmp_path / "cells.csv"
    export_csv(cpath, ["x", "y"], [[1, 2], [3, 4]])
    lines = cpath.read_text().strip().splitlines()
    assert lines[0] == "x,y"
    assert len(lines) == 3


def test_atomic_write_survives_writer_kill(tmp_path):
    """Hard-kill a writer mid-stream: the target must keep its previous
    content, never a truncated half-write."""
    import subprocess
    import sys

    target = tmp_path / "fig.txt"
    target.write_text("previous good version")
    script = (
        "import sys, os\n"
        "sys.path.insert(0, sys.argv[2])\n"
        "from repro.experiments.export import atomic_writer\n"
        "with atomic_writer(sys.argv[1]) as fh:\n"
        "    fh.write('partial garbage ' * 1000)\n"
        "    fh.flush()\n"
        "    os._exit(1)  # simulated crash: no replace, no cleanup\n"
    )
    src = str(pathlib.Path(__file__).resolve().parents[1] / "src")
    proc = subprocess.run(
        [sys.executable, "-c", script, str(target), src],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    assert target.read_text() == "previous good version"
