"""Utility layer: units, formatting, validation, RNG."""

import numpy as np
import pytest

from repro.util import (
    ascii_table,
    check_fraction,
    check_non_negative,
    check_positive,
    format_bytes,
    format_duration,
    make_rng,
    parse_size,
    percent,
    spawn_rngs,
)


# -- units ------------------------------------------------------------------


def test_format_bytes():
    assert format_bytes(0) == "0B"
    assert format_bytes(999) == "999B"
    assert format_bytes(1_000) == "1KB"
    assert format_bytes(8_000_000) == "8MB"
    assert format_bytes(1_500_000_000) == "1.50GB"
    assert format_bytes(-2_000) == "-2KB"


def test_format_duration():
    assert format_duration(2e-9).endswith("ns")
    assert format_duration(2e-6) == "2.0us"
    assert format_duration(0.5) == "500.0ms"
    assert format_duration(2.0) == "2.00s"
    assert format_duration(120) == "2.0min"
    assert format_duration(7200) == "2.00h"
    assert format_duration(-1).startswith("-")


def test_parse_size():
    assert parse_size("8MB") == 8_000_000
    assert parse_size("1.5 GB") == 1_500_000_000
    assert parse_size("4KiB") == 4096
    assert parse_size("512") == 512
    assert parse_size(1024) == 1024
    assert parse_size(12.7) == 12
    assert parse_size("10k") == 10_000


def test_parse_size_errors():
    with pytest.raises(ValueError):
        parse_size("abc")
    with pytest.raises(ValueError):
        parse_size("10 parsecs")
    with pytest.raises(ValueError):
        parse_size(-5)


# -- fmt ---------------------------------------------------------------------


def test_percent():
    assert percent(0.1234) == "12.34%"
    assert percent(0.1234, digits=1) == "12.3%"


def test_ascii_table_alignment():
    out = ascii_table(["a", "bbbb"], [[1, 2], [333, 4.5]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert all(len(line) == len(lines[1]) for line in lines[1:])
    assert "333" in out


def test_ascii_table_ragged_row_rejected():
    with pytest.raises(ValueError):
        ascii_table(["a"], [[1, 2]])


# -- validation ----------------------------------------------------------------


def test_checks():
    assert check_positive("x", 1) == 1
    assert check_non_negative("x", 0) == 0
    assert check_fraction("x", 0.5) == 0.5
    with pytest.raises(ValueError, match="x"):
        check_positive("x", 0)
    with pytest.raises(ValueError):
        check_non_negative("x", -1)
    with pytest.raises(ValueError):
        check_fraction("x", 1.01)


# -- rng ------------------------------------------------------------------------


def test_make_rng_deterministic():
    a = make_rng(5).random(4)
    b = make_rng(5).random(4)
    assert np.array_equal(a, b)


def test_make_rng_passthrough():
    g = make_rng(1)
    assert make_rng(g) is g


def test_spawn_rngs_independent():
    children = spawn_rngs(7, 3)
    assert len(children) == 3
    draws = [c.random(8).tolist() for c in children]
    assert draws[0] != draws[1] != draws[2]
    again = spawn_rngs(7, 3)
    assert draws[0] == again[0].random(8).tolist()


def test_spawn_rngs_validation():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)
    assert spawn_rngs(0, 0) == []
