"""Browser index — invalidation (exact) mode."""

import pytest

from repro.index import BrowserIndex, IndexEntry, UpdateMode
from repro.index.staleness import PeriodicUpdatePolicy


def make_index(n=4):
    return BrowserIndex(n_clients=n, mode=UpdateMode.INVALIDATION)


def test_insert_then_lookup():
    idx = make_index()
    idx.record_insert(client=1, doc=7, version=0, size=100, now=0.0)
    hit = idx.lookup(doc=7, exclude_client=0, now=1.0)
    assert hit is not None
    assert hit.client == 1
    assert hit.entry.size == 100


def test_lookup_excludes_requester():
    idx = make_index()
    idx.record_insert(client=1, doc=7, version=0, size=100, now=0.0)
    assert idx.lookup(doc=7, exclude_client=1, now=1.0) is None


def test_lookup_unknown_doc():
    idx = make_index()
    assert idx.lookup(doc=99, exclude_client=0, now=0.0) is None


def test_evict_removes_entry():
    idx = make_index()
    idx.record_insert(client=1, doc=7, version=0, size=100, now=0.0)
    idx.record_evict(client=1, doc=7, now=1.0)
    assert idx.lookup(doc=7, exclude_client=0, now=2.0) is None
    assert idx.n_entries == 0


def test_version_filtering():
    idx = make_index()
    idx.record_insert(client=1, doc=7, version=0, size=100, now=0.0)
    assert idx.lookup(doc=7, exclude_client=0, now=1.0, version=1) is None
    assert idx.lookup(doc=7, exclude_client=0, now=1.0, version=0) is not None


def test_reinsert_updates_version_without_double_count():
    idx = make_index()
    idx.record_insert(client=1, doc=7, version=0, size=100, now=0.0)
    idx.record_insert(client=1, doc=7, version=1, size=120, now=1.0, replace=True)
    assert idx.n_entries == 1
    hit = idx.lookup(doc=7, exclude_client=0, now=2.0, version=1)
    assert hit is not None and hit.entry.size == 120


def test_round_robin_spreads_holders():
    idx = make_index()
    for c in (1, 2, 3):
        idx.record_insert(client=c, doc=7, version=0, size=100, now=0.0)
    chosen = {idx.lookup(doc=7, exclude_client=0, now=1.0).client for _ in range(9)}
    assert chosen == {1, 2, 3}


def test_ttl_expiry():
    idx = make_index()
    idx.record_insert(client=1, doc=7, version=0, size=100, now=0.0, ttl=10.0)
    assert idx.lookup(doc=7, exclude_client=0, now=5.0) is not None
    assert idx.lookup(doc=7, exclude_client=0, now=11.0) is None


def test_holders_of():
    idx = make_index()
    idx.record_insert(client=2, doc=7, version=0, size=100, now=0.0)
    idx.record_insert(client=0, doc=7, version=0, size=100, now=0.0)
    assert idx.holders_of(7) == [0, 2]
    assert idx.holders_of(8) == []


def test_footprint_counts_entries():
    idx = make_index()
    idx.record_insert(client=0, doc=1, version=0, size=10, now=0.0)
    idx.record_insert(client=1, doc=1, version=0, size=10, now=0.0)
    idx.record_insert(client=0, doc=2, version=0, size=10, now=0.0)
    assert idx.n_entries == 3
    assert idx.footprint_bytes() == 3 * IndexEntry.WIRE_BYTES


def test_event_counters():
    idx = make_index()
    idx.record_insert(client=0, doc=1, version=0, size=10, now=0.0)
    idx.record_evict(client=0, doc=1, now=1.0)
    assert idx.n_insert_events == 1
    assert idx.n_evict_events == 1


def test_invalid_construction():
    with pytest.raises(ValueError):
        BrowserIndex(n_clients=0)
    with pytest.raises(ValueError):
        BrowserIndex(n_clients=2, mode=UpdateMode.INVALIDATION, policy=PeriodicUpdatePolicy())


def test_entry_expired_helper():
    e = IndexEntry(client=0, doc=1, version=0, size=10, timestamp=100.0, ttl=5.0)
    assert not e.expired(104.0)
    assert e.expired(106.0)
    forever = IndexEntry(client=0, doc=1, version=0, size=10, timestamp=100.0)
    assert not forever.expired(1e12)
