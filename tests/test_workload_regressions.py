"""Regression tests for three workload-path bugs.

1. ``_draw_clients`` could *lose* clients while repairing the
   every-client-appears invariant: the blind repair pass overwrote the
   sole occurrence of another client (at ``n_requests=30,
   n_clients=25`` that re-violated the invariant on 294 of 300 seeds).
   The count-aware fixpoint repair never steals a sole occurrence, and
   non-violating initial draws consume an unchanged RNG stream.

2. Sparse client ids silently allocated ``max_id + 1`` per-client
   slots: a 3-row trace with a stray client id of 300 million cost
   ~2.7 GB of RSS.  The engine now rejects sparse ids with an error
   naming the repair (``Trace.renumbered()``).

3. ``Trace.__iter__``/``iter_rows`` converted all five columns with
   ``.tolist()`` up front, roughly doubling resident memory at replay
   start; conversion is now chunked so the transient is O(chunk).
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.core import Organization, SimulationConfig, Simulator, simulate
from repro.traces.record import Trace
from repro.traces.synthetic import SyntheticTraceConfig, _draw_clients, generate_trace
from repro.util.rng import make_rng


def _trace(clients, n_docs=3):
    n = len(clients)
    return Trace(
        timestamps=np.arange(n, dtype=float),
        clients=np.array(clients, dtype=np.int64),
        docs=np.arange(n, dtype=np.int64) % n_docs,
        sizes=np.full(n, 100, dtype=np.int64),
        versions=np.zeros(n, dtype=np.int64),
        name="hand",
    )


# -- bug 1: client-planting repair loses clients -------------------------------


def test_every_client_appears_across_seeds():
    """The shape that broke 294/300 seeds before the fixpoint repair."""
    config = SyntheticTraceConfig(n_requests=30, n_clients=25)
    for seed in range(300):
        clients = _draw_clients(config, make_rng(seed))
        present = np.unique(clients)
        assert present.size == 25, (
            f"seed {seed}: repair lost clients, only {present.size}/25 appear"
        )


def test_generated_trace_covers_all_clients():
    config = SyntheticTraceConfig(n_requests=30, n_clients=25)
    for seed in range(40):
        t = generate_trace(config, seed=seed)
        assert t.n_clients == 25


def test_non_violating_draws_bit_identical():
    """The repair only runs on violation, so seeds whose initial draw
    already covers every client must get the exact pre-fix stream."""
    config = SyntheticTraceConfig(n_requests=5_000, n_clients=10)
    checked = 0
    for seed in range(20):
        rng = make_rng(seed)
        weights = rng.dirichlet(
            np.full(config.n_clients, config.client_activity_alpha)
        )
        raw = rng.choice(config.n_clients, size=config.n_requests, p=weights)
        if np.unique(raw).size < config.n_clients:
            continue  # this seed would trigger the repair
        checked += 1
        via_fix = _draw_clients(config, make_rng(seed))
        np.testing.assert_array_equal(via_fix, raw.astype(np.int64))
    assert checked > 0, "no non-violating seed in range; widen the sweep"


def test_repair_preserves_request_count_and_dtype():
    config = SyntheticTraceConfig(n_requests=30, n_clients=25)
    clients = _draw_clients(config, make_rng(1))
    assert clients.shape == (30,)
    assert clients.dtype == np.int64
    assert clients.min() >= 0 and clients.max() < 25


def test_fewer_requests_than_clients_unrepaired():
    """With n_requests < n_clients full coverage is impossible; the
    invariant (and its repair) must not apply."""
    config = SyntheticTraceConfig(n_requests=4, n_clients=100)
    clients = _draw_clients(config, make_rng(0))
    assert clients.shape == (4,)


# -- bug 2: sparse client ids blow up per-client allocations -------------------


def test_sparse_client_ids_rejected():
    t = _trace([0, 1, 300_000_000])
    config = SimulationConfig(proxy_capacity=1000, browser_capacity=1000)
    with pytest.raises(ValueError, match="sparse client ids"):
        Simulator(t, Organization.BROWSERS_AWARE_PROXY, config)


def test_sparse_rejection_names_the_repair():
    t = _trace([0, 5])
    config = SimulationConfig(proxy_capacity=1000, browser_capacity=1000)
    with pytest.raises(ValueError, match="renumbered"):
        simulate(t, Organization.PROXY_AND_LOCAL_BROWSER, config)


def test_renumbered_sparse_trace_simulates():
    t = _trace([0, 1, 300_000_000]).renumbered()
    config = SimulationConfig(proxy_capacity=1000, browser_capacity=1000)
    r = simulate(t, Organization.BROWSERS_AWARE_PROXY, config)
    assert r.n_requests == 3


def test_sparse_rejection_is_alloc_bounded():
    """The pre-fix failure mode was a ~2.7 GB allocation *before* any
    error; rejection must trigger without per-client allocations."""
    t = _trace([0, 1, 300_000_000])
    config = SimulationConfig(proxy_capacity=1000, browser_capacity=1000)
    tracemalloc.start()
    try:
        with pytest.raises(ValueError):
            Simulator(t, Organization.BROWSERS_AWARE_PROXY, config)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert peak < 50 * 1024 * 1024, f"rejection allocated {peak:,} bytes"


def test_dense_ids_still_accepted():
    t = _trace([0, 1, 2, 1])
    config = SimulationConfig(proxy_capacity=1000, browser_capacity=1000)
    assert simulate(t, Organization.PROXY_AND_LOCAL_BROWSER, config).n_requests == 4


# -- bug 3: whole-trace .tolist() doubling in iteration ------------------------


def test_iter_rows_chunked_equivalence():
    t = generate_trace(SyntheticTraceConfig(n_requests=1_000, n_clients=20), seed=3)
    whole = list(
        zip(
            t.timestamps.tolist(),
            t.clients.tolist(),
            t.docs.tolist(),
            t.sizes.tolist(),
            t.versions.tolist(),
        )
    )
    assert list(t.iter_rows()) == whole
    assert list(t.iter_rows(chunk_rows=7)) == whole
    assert [
        (r.timestamp, r.client, r.doc, r.size, r.version) for r in t
    ] == whole


def test_iter_rows_rejects_bad_chunk():
    t = _trace([0, 1])
    with pytest.raises(ValueError):
        next(t.iter_rows(chunk_rows=-1))


def test_iter_rows_transient_is_chunk_bounded():
    """Peak traced allocation while iterating must track the chunk
    size, not the trace size (the old code converted all 5 columns)."""
    n = 200_000
    t = Trace(
        timestamps=np.arange(n, dtype=float),
        clients=np.zeros(n, dtype=np.int64),
        docs=np.zeros(n, dtype=np.int64),
        sizes=np.ones(n, dtype=np.int64),
        versions=np.zeros(n, dtype=np.int64),
        name="big",
    )
    chunk = 1_000
    tracemalloc.start()
    try:
        for _ in t.iter_rows(chunk_rows=chunk):
            pass
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    # full-trace conversion would be ~5 columns x n x ~30B of boxed
    # scalars (tens of MB); a chunked transient stays well under 5 MB.
    assert peak < 5 * 1024 * 1024, f"iteration transient {peak:,} bytes"
