"""The engine's fault-tolerance layer: retries, pool-crash recovery,
per-cell timeouts, the JSONL run journal, and resume.

The overarching contract: **no failure-handling feature may change any
simulated number**.  Every test that exercises a recovery path compares
the recovered results bit-for-bit (``dataclasses.asdict``) against a
fault-free serial reference run.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core import (
    EngineOptions,
    FaultPlan,
    InjectedFault,
    Organization,
    SimulationConfig,
    build_cells,
    run_cells,
    simulate,
)
from repro.core.journal import load_completed_results, read_journal

from tests.conftest import assert_result_roundtrips

ORGS = (Organization.PROXY_AND_LOCAL_BROWSER, Organization.BROWSERS_AWARE_PROXY)
FRACTIONS = (0.05, 0.2)

#: no backoff sleeps in tests.
FAST = dict(backoff_base=0.0)


def fingerprint(result) -> dict:
    return dataclasses.asdict(result)


def make_grid(trace, fractions=FRACTIONS):
    config = SimulationConfig(proxy_capacity=20_000, browser_capacity=5_000)
    return build_cells(trace.name, ORGS, fractions, lambda f: config)


@pytest.fixture()
def reference(small_trace):
    """Fault-free serial run of the standard grid."""
    cells = make_grid(small_trace)
    run = run_cells(cells, {small_trace.name: small_trace}, workers=0)
    assert run.ok
    return run


# -- retry -------------------------------------------------------------------


@pytest.mark.parametrize("workers", [0, 2])
def test_transient_failure_is_retried(small_trace, reference, workers):
    cells = make_grid(small_trace)
    options = EngineOptions(
        retries=1,
        faults=FaultPlan((InjectedFault(cell_index=1, kind="raise", attempt=0),)),
        **FAST,
    )
    run = run_cells(
        cells, {small_trace.name: small_trace}, workers=workers, options=options
    )
    assert run.ok, run.failures
    assert run.attempts[1] == 2  # failed once, succeeded on retry
    assert all(run.attempts[c.index] >= 1 for c in cells)
    for index, result in reference.results.items():
        assert fingerprint(run.results[index]) == fingerprint(result), index


def test_exhausted_retries_quarantine_the_cell(small_trace, reference):
    cells = make_grid(small_trace)
    faults = FaultPlan(
        tuple(InjectedFault(cell_index=2, kind="raise", attempt=a) for a in range(3))
    )
    options = EngineOptions(retries=2, faults=faults, **FAST)
    run = run_cells(cells, {small_trace.name: small_trace}, workers=0, options=options)
    assert len(run.failures) == 1
    failure = run.failures[0]
    assert failure.cell.index == 2
    assert failure.attempts == 3
    assert "injected fault" in failure.error
    assert "after 3 attempts" in str(failure)
    for index in (0, 1, 3):
        assert fingerprint(run.results[index]) == fingerprint(
            reference.results[index]
        )


def test_backoff_delay_is_capped_exponential():
    options = EngineOptions(retries=5, backoff_base=0.5, backoff_cap=3.0)
    assert options.backoff_delay(0) == 0.0
    assert options.backoff_delay(1) == 0.5
    assert options.backoff_delay(2) == 1.0
    assert options.backoff_delay(3) == 2.0
    assert options.backoff_delay(4) == 3.0  # capped
    assert options.backoff_delay(10) == 3.0


# -- worker death / pool recovery --------------------------------------------


def test_worker_kill_recovers_and_matches_reference(small_trace, reference):
    """A hard worker death (os._exit, like OOM/SIGKILL) breaks the pool;
    the engine must rebuild it, requeue unfinished cells, and still
    produce bit-identical results."""
    cells = make_grid(small_trace)
    options = EngineOptions(
        retries=2,
        faults=FaultPlan((InjectedFault(cell_index=0, kind="kill", attempt=0),)),
        **FAST,
    )
    run = run_cells(cells, {small_trace.name: small_trace}, workers=2, options=options)
    assert run.ok, run.failures
    assert run.pool_crashes >= 1
    assert run.attempts[0] >= 2
    assert set(run.results) == set(reference.results)
    for index, result in reference.results.items():
        assert fingerprint(run.results[index]) == fingerprint(result), index


def test_repeat_killer_is_quarantined_others_survive(small_trace, reference):
    """A cell that kills its worker on every attempt must be isolated
    and quarantined without dragging bystander cells down."""
    cells = make_grid(small_trace)
    faults = FaultPlan(
        tuple(InjectedFault(cell_index=0, kind="kill", attempt=a) for a in range(6))
    )
    options = EngineOptions(retries=3, faults=faults, **FAST)
    run = run_cells(cells, {small_trace.name: small_trace}, workers=2, options=options)
    assert len(run.failures) == 1
    failure = run.failures[0]
    assert failure.cell.index == 0
    assert "BrokenProcessPool" in failure.error
    assert run.pool_crashes >= 2  # batch crashes, then isolation pinpoints it
    for index in (1, 2, 3):
        assert fingerprint(run.results[index]) == fingerprint(
            reference.results[index]
        ), index


def test_kill_fault_in_serial_mode_is_survivable(small_trace):
    """In-process execution cannot lose a worker; the kill fault maps to
    an ordinary failure so serial fault runs stay meaningful."""
    cells = make_grid(small_trace)
    options = EngineOptions(
        retries=1,
        faults=FaultPlan((InjectedFault(cell_index=0, kind="kill", attempt=0),)),
        **FAST,
    )
    run = run_cells(cells, {small_trace.name: small_trace}, workers=0, options=options)
    assert run.ok
    assert run.attempts[0] == 2


# -- per-cell timeout --------------------------------------------------------


def test_hanging_cell_times_out_and_retries(small_trace, reference, tmp_path):
    journal = tmp_path / "hang.jsonl"
    options = EngineOptions(
        retries=1,
        cell_timeout=0.3,
        journal=journal,
        faults=FaultPlan((InjectedFault(cell_index=1, kind="hang", attempt=0),)),
        **FAST,
    )
    cells = make_grid(small_trace)
    run = run_cells(cells, {small_trace.name: small_trace}, workers=0, options=options)
    assert run.ok, run.failures
    assert run.attempts[1] == 2
    outcomes = [
        r["outcome"]
        for r in read_journal(journal)
        if r.get("kind") == "attempt" and r["cell"] == 1
    ]
    assert outcomes == ["timeout", "ok"]
    for index, result in reference.results.items():
        assert fingerprint(run.results[index]) == fingerprint(result), index


# -- journal + resume --------------------------------------------------------


def test_journal_schema(small_trace, tmp_path):
    journal = tmp_path / "run.jsonl"
    cells = make_grid(small_trace)
    run_cells(
        cells,
        {small_trace.name: small_trace},
        workers=0,
        options=EngineOptions(journal=journal),
    )
    records = list(read_journal(journal))
    assert records[0]["kind"] == "run"
    assert records[0]["n_cells"] == len(cells)
    assert records[0]["retries"] == 0
    attempts = [r for r in records if r["kind"] == "attempt"]
    results = [r for r in records if r["kind"] == "result"]
    assert len(attempts) == len(cells) and len(results) == len(cells)
    for record in attempts:
        assert set(record) >= {
            "cell", "trace", "organization", "fraction", "seed",
            "config", "attempt", "outcome", "elapsed", "error",
        }
        assert record["outcome"] == "ok"
        assert record["trace"] == small_trace.name
    # the journal is valid JSONL end to end
    lines = journal.read_text().strip().splitlines()
    assert all(json.loads(line) for line in lines)


def test_result_json_roundtrip_is_lossless(small_trace):
    # the exhaustive field-by-field check lives in conftest so every
    # round-trip test shares it
    config = SimulationConfig(
        proxy_capacity=20_000, browser_capacity=5_000, holder_availability=0.5
    )
    result = simulate(small_trace, Organization.BROWSERS_AWARE_PROXY, config)
    assert_result_roundtrips(result)


def test_resume_executes_only_unfinished_cells(small_trace, reference, tmp_path):
    """First run: one cell fails for good.  Second run with --resume:
    only that cell executes, and the merged results are bit-identical
    to a clean run."""
    first_journal = tmp_path / "first.jsonl"
    cells = make_grid(small_trace)
    traces = {small_trace.name: small_trace}
    first = run_cells(
        cells,
        traces,
        workers=0,
        options=EngineOptions(
            journal=first_journal,
            faults=FaultPlan((InjectedFault(cell_index=2, kind="raise", attempt=0),)),
            **FAST,
        ),
    )
    assert len(first.failures) == 1 and first.failures[0].cell.index == 2

    second_journal = tmp_path / "second.jsonl"
    second = run_cells(
        cells,
        traces,
        workers=0,
        options=EngineOptions(journal=second_journal, resume=first_journal),
    )
    assert second.ok
    assert second.resumed == {0, 1, 3}
    assert second.attempts == {0: 0, 1: 0, 3: 0, 2: 1}  # only cell 2 executed
    assert set(second.results) == set(reference.results)
    for index, result in reference.results.items():
        assert fingerprint(second.results[index]) == fingerprint(result), index

    # the second journal is complete: resuming from it executes nothing
    third = run_cells(
        cells, traces, workers=0,
        options=EngineOptions(resume=second_journal),
    )
    assert third.resumed == {0, 1, 2, 3}
    assert all(n == 0 for n in third.attempts.values())
    for index, result in reference.results.items():
        assert fingerprint(third.results[index]) == fingerprint(result), index


def test_faulty_pooled_run_journal_replays_bit_identical(
    small_trace, reference, tmp_path
):
    """The acceptance scenario: a sweep with an injected worker kill AND
    an injected transient failure completes, and its journal replays via
    resume to results bit-identical to a fault-free serial run."""
    journal = tmp_path / "faulty.jsonl"
    cells = make_grid(small_trace)
    traces = {small_trace.name: small_trace}
    faulty = run_cells(
        cells,
        traces,
        workers=2,
        options=EngineOptions(
            retries=2,
            journal=journal,
            faults=FaultPlan(
                (
                    InjectedFault(cell_index=0, kind="kill", attempt=0),
                    InjectedFault(cell_index=3, kind="raise", attempt=0),
                )
            ),
            **FAST,
        ),
    )
    assert faulty.ok, faulty.failures
    assert faulty.pool_crashes >= 1

    replayed = run_cells(
        cells, traces, workers=0, options=EngineOptions(resume=journal)
    )
    assert replayed.resumed == {0, 1, 2, 3}
    for index, result in reference.results.items():
        assert fingerprint(faulty.results[index]) == fingerprint(result), index
        assert fingerprint(replayed.results[index]) == fingerprint(result), index


def test_resume_ignores_results_from_a_different_config(small_trace, tmp_path):
    """Cell identity includes the config fingerprint: a journal written
    with different cache sizes must not satisfy this run's lookups."""
    journal = tmp_path / "other-config.jsonl"
    traces = {small_trace.name: small_trace}
    other = build_cells(
        small_trace.name, ORGS, FRACTIONS,
        lambda f: SimulationConfig(proxy_capacity=99_000, browser_capacity=1_000),
    )
    run_cells(other, traces, workers=0, options=EngineOptions(journal=journal))
    assert len(load_completed_results(journal)) == len(other)

    cells = make_grid(small_trace)
    resumed = run_cells(
        cells, traces, workers=0, options=EngineOptions(resume=journal)
    )
    assert resumed.resumed == set()  # nothing matched; everything re-ran
    assert all(n == 1 for n in resumed.attempts.values())


def test_engine_options_with_no_faults_changes_nothing(small_trace, reference, tmp_path):
    """The whole fault-tolerance layer is a no-op on the numbers when
    nothing fails — the golden guarantee."""
    cells = make_grid(small_trace)
    run = run_cells(
        cells,
        {small_trace.name: small_trace},
        workers=0,
        options=EngineOptions(
            retries=3, cell_timeout=600.0, journal=tmp_path / "clean.jsonl"
        ),
    )
    assert run.ok and run.pool_crashes == 0
    assert all(n == 1 for n in run.attempts.values())
    for index, result in reference.results.items():
        assert fingerprint(run.results[index]) == fingerprint(result), index


# -- progress-callback isolation ---------------------------------------------


@pytest.mark.parametrize("workers", [0, 2])
def test_raising_progress_callback_cannot_kill_the_sweep(
    small_trace, reference, workers
):
    events = []

    def hostile(event):
        events.append(event)
        raise RuntimeError("observer bug")

    cells = make_grid(small_trace)
    run = run_cells(
        cells, {small_trace.name: small_trace}, workers=workers, progress=hostile
    )
    assert run.ok, run.failures
    assert len(events) == len(cells)
    assert sorted(e.completed for e in events) == [1, 2, 3, 4]
    for index, result in reference.results.items():
        assert fingerprint(run.results[index]) == fingerprint(result), index


# -- fault plan parsing ------------------------------------------------------


def test_fault_plan_parse():
    plan = FaultPlan.parse("kill:3, raise:1@0, raise:1@1, hang:2")
    assert plan.fault_for(3, 0).kind == "kill"
    assert plan.fault_for(1, 0).kind == "raise"
    assert plan.fault_for(1, 1).kind == "raise"
    assert plan.fault_for(1, 2) is None
    assert plan.fault_for(2, 0).kind == "hang"
    assert plan.fault_for(0, 0) is None
    assert bool(plan) and not bool(FaultPlan())


def test_fault_plan_rejects_bad_specs():
    with pytest.raises(ValueError):
        FaultPlan.parse("explode:1")
    with pytest.raises(ValueError):
        FaultPlan.parse("kill")
    with pytest.raises(ValueError):
        InjectedFault(cell_index=-1)


def test_engine_options_validation():
    with pytest.raises(ValueError):
        EngineOptions(retries=-1)
    with pytest.raises(ValueError):
        EngineOptions(cell_timeout=0)
    with pytest.raises(ValueError):
        EngineOptions(isolate_after_crashes=0)


# -- requested vs effective workers ------------------------------------------


def test_serial_fallback_reports_requested_workers(small_trace):
    cells = make_grid(small_trace, fractions=(0.1,))[:1]
    run = run_cells(cells, {small_trace.name: small_trace}, workers=4)
    timing = run.timing
    assert timing.workers == 0  # effective: fell back to in-process
    assert timing.requested_workers == 4
    assert timing.fell_back_to_serial
    assert "4 requested" in timing.render()


def test_normal_runs_record_both_worker_counts(small_trace):
    cells = make_grid(small_trace)
    pooled = run_cells(cells, {small_trace.name: small_trace}, workers=2)
    assert pooled.timing.workers == 2
    assert pooled.timing.requested_workers == 2
    assert not pooled.timing.fell_back_to_serial
    serial = run_cells(cells, {small_trace.name: small_trace}, workers=0)
    assert serial.timing.workers == 0
    assert serial.timing.requested_workers == 0
    assert not serial.timing.fell_back_to_serial


# -- journal crash-safety ----------------------------------------------------


def test_truncated_trailing_record_at_every_byte(small_trace, tmp_path):
    """A crash mid-write tears the journal's last line.  Whatever byte
    the write died at, the intact prefix must still load — without
    raising — and only the torn record is lost."""
    journal = tmp_path / "run.jsonl"
    cells = make_grid(small_trace)
    run_cells(
        cells,
        {small_trace.name: small_trace},
        workers=0,
        options=EngineOptions(journal=journal),
    )
    full = journal.read_bytes()
    complete = load_completed_results(journal)
    assert len(complete) == len(cells)

    # the last line is the final cell's result record
    body = full.rstrip(b"\n")
    last_start = body.rfind(b"\n") + 1
    truncated_path = tmp_path / "torn.jsonl"
    for cut in range(last_start, len(body)):
        truncated_path.write_bytes(full[:cut])
        restored = load_completed_results(truncated_path)
        assert len(restored) == len(cells) - 1, f"cut at byte {cut}"
        for key, result in restored.items():
            assert fingerprint(result) == fingerprint(complete[key])


def test_corrupt_journal_line_warns(small_trace, tmp_path, caplog):
    journal = tmp_path / "run.jsonl"
    cells = make_grid(small_trace, fractions=(0.1,))
    run_cells(
        cells,
        {small_trace.name: small_trace},
        workers=0,
        options=EngineOptions(journal=journal),
    )
    text = journal.read_text()
    torn = text + '{"kind": "result", "trace": "small", "trunc'
    journal.write_text(torn)
    import logging

    with caplog.at_level(logging.WARNING, logger="repro.core.journal"):
        restored = load_completed_results(journal)
    assert len(restored) == len(cells)
    assert any("discarding corrupt record" in r.message for r in caplog.records)


# -- timeout portability -----------------------------------------------------


def test_timeout_enforceable_on_main_thread():
    from repro.core.parallel import timeout_enforceable

    # POSIX CI runs this on the main thread with SIGALRM available
    assert timeout_enforceable()


def test_deadline_degrades_off_main_thread(caplog):
    """A timeout that cannot arm must run the block unbounded, once-
    warned — never crash the sweep."""
    import threading
    import time

    from repro.core import parallel
    from repro.core.parallel import _deadline, timeout_enforceable

    outcome = {}

    def run_in_thread():
        outcome["enforceable"] = timeout_enforceable()
        with _deadline(0.001):
            time.sleep(0.05)  # far past the deadline
        outcome["survived"] = True

    parallel._TIMEOUT_DEGRADED_WARNED = False
    with caplog.at_level("WARNING", logger=parallel.log.name):
        worker = threading.Thread(target=run_in_thread)
        worker.start()
        worker.join()
    assert outcome == {"enforceable": False, "survived": True}
    degraded = [r for r in caplog.records if "cannot be enforced" in r.message]
    assert len(degraded) == 1
    # the warning fires once per process, not once per cell
    parallel._TIMEOUT_DEGRADED_WARNED = False


def test_unenforceable_timeout_reported_in_timing(small_trace):
    """Run a serial sweep with a cell timeout from a worker thread: the
    timing report must flag the timeout as unsupported rather than
    silently pretending cells were bounded."""
    import threading

    cells = make_grid(small_trace, fractions=(0.05,))
    holder = {}

    def run_sweep():
        holder["run"] = run_cells(
            cells,
            {small_trace.name: small_trace},
            workers=0,
            options=EngineOptions(cell_timeout=600.0, **FAST),
        )

    worker = threading.Thread(target=run_sweep)
    worker.start()
    worker.join()
    run = holder["run"]
    assert run.ok
    assert run.timing.timeout_supported is False
    assert "UNSUPPORTED" in run.timing.render()


def test_enforced_timeout_reported_as_supported(small_trace):
    cells = make_grid(small_trace, fractions=(0.05,))
    run = run_cells(
        cells,
        {small_trace.name: small_trace},
        workers=0,
        options=EngineOptions(cell_timeout=600.0, **FAST),
    )
    assert run.ok
    assert run.timing.timeout_supported is True
    assert "UNSUPPORTED" not in run.timing.render()
