"""LANTopology and generator-spawning edge cases."""

import numpy as np
import pytest

from repro.network import EthernetModel, LANTopology, WANModel
from repro.util.rng import make_rng, spawn_rngs


def test_lan_topology_transfers_share_bus():
    topo = LANTopology(n_clients=4, lan=EthernetModel(bandwidth_bps=1e6, connection_setup=0.0))
    t1 = topo.remote_browser_transfer(0.0, 125_000)  # 1 s
    t2 = topo.remote_browser_transfer(0.5, 125_000)
    assert t1.wait == 0.0
    assert t2.wait == pytest.approx(0.5)
    assert topo.bus.stats.n_transfers == 2


def test_lan_topology_reset():
    topo = LANTopology(n_clients=2)
    topo.remote_browser_transfer(10.0, 100)
    topo.reset()
    assert topo.bus.stats.n_transfers == 0
    topo.remote_browser_transfer(0.0, 100)  # arrival order restarts


def test_lan_topology_validation():
    with pytest.raises(ValueError):
        LANTopology(n_clients=0)


def test_wan_validation():
    with pytest.raises(ValueError):
        WANModel(bandwidth_bps=0)
    with pytest.raises(ValueError):
        WANModel(connection_setup=-1)
    with pytest.raises(ValueError):
        WANModel().fetch_time(-1)


def test_spawn_from_existing_generator():
    g = make_rng(3)
    children = spawn_rngs(g, 2)
    assert len(children) == 2
    # children of the same parent differ from each other
    assert children[0].random(4).tolist() != children[1].random(4).tolist()


def test_spawn_reproducible_from_seed():
    a = spawn_rngs(11, 3)
    b = spawn_rngs(11, 3)
    for x, y in zip(a, b):
        assert np.array_equal(x.random(5), y.random(5))
