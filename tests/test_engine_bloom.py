"""Bloom-summary browser index: unit tests and engine integration."""

import pytest

from repro.core import Organization, SimulationConfig, simulate
from repro.index.engine_bloom import BloomBrowserIndex


def make_index(n=4, **kw):
    kw.setdefault("expected_docs_per_client", 64)
    kw.setdefault("rebuild_threshold", 0.5)
    return BloomBrowserIndex(n, **kw)


def test_insert_then_lookup():
    idx = make_index()
    idx.record_insert(client=1, doc=7, version=0, size=100, now=0.0)
    hit = idx.lookup(doc=7, exclude_client=0, now=1.0)
    assert hit is not None
    assert hit.client == 1
    assert hit.entry.version == 0
    assert hit.entry.size == 100


def test_lookup_excludes_requester():
    idx = make_index()
    idx.record_insert(client=1, doc=7, version=0, size=100, now=0.0)
    assert idx.lookup(doc=7, exclude_client=1, now=1.0) is None


def test_eviction_stays_visible_until_rebuild():
    idx = make_index(rebuild_threshold=1.0)
    idx.record_insert(client=1, doc=7, version=0, size=100, now=0.0)
    idx.record_evict(client=1, doc=7, now=1.0)
    # the filter cannot forget: the ghost is still claimed...
    ghost = idx.lookup(doc=7, exclude_client=0, now=2.0)
    assert ghost is not None
    # ...until the client sends a fresh summary.
    idx.rebuild(1, now=3.0)
    assert idx.lookup(doc=7, exclude_client=0, now=4.0) is None


def test_rebuild_threshold_triggers():
    idx = make_index(rebuild_threshold=0.05)
    # enough churn forces an automatic rebuild
    for d in range(30):
        idx.record_insert(client=0, doc=d, version=0, size=10, now=float(d))
        idx.record_evict(client=0, doc=d, now=float(d) + 0.5)
    assert idx.rebuilds > 0
    assert idx.update_messages == idx.rebuilds


def test_refresh_does_not_count_as_churn():
    idx = make_index(rebuild_threshold=1.0)
    idx.record_insert(client=0, doc=1, version=0, size=10, now=0.0)
    before = idx._changes_since_rebuild[0]
    idx.record_insert(client=0, doc=1, version=1, size=12, now=1.0, replace=True)
    assert idx._changes_since_rebuild[0] == before


def test_counters_and_footprint():
    idx = make_index()
    idx.record_insert(client=0, doc=1, version=0, size=10, now=0.0)
    idx.record_insert(client=2, doc=2, version=0, size=10, now=0.0)
    assert idx.n_entries == 2
    assert idx.n_insert_events == 2
    assert idx.footprint_bytes() > 0
    assert idx.is_stale is True


def test_validation():
    with pytest.raises(ValueError):
        BloomBrowserIndex(0)
    with pytest.raises(ValueError):
        BloomBrowserIndex(2, rebuild_threshold=1.5)


# -- engine integration ----------------------------------------------------


def test_bloom_index_in_engine_close_to_exact(small_trace):
    base = SimulationConfig.relative(small_trace, proxy_frac=0.10, browser_sizing="minimum")
    exact = simulate(small_trace, Organization.BROWSERS_AWARE_PROXY, base)
    bloom = simulate(
        small_trace, Organization.BROWSERS_AWARE_PROXY, base.with_(index_kind="bloom")
    )
    # Bloom summaries lose at most a sliver of hit ratio...
    assert bloom.hit_ratio > exact.hit_ratio - 0.02
    # ...still find remote hits...
    assert bloom.by_location_remote_hits() > 0
    # ...with fewer update messages than per-event invalidation...
    assert bloom.overhead.index_update_messages < exact.overhead.index_update_messages
    # ...at the cost of validated-and-rejected false hits.
    assert bloom.index_false_hits > 0
    assert exact.index_false_hits == 0


def test_bloom_index_config_rejects_periodic_policy(small_trace):
    from repro.index.staleness import PeriodicUpdatePolicy

    with pytest.raises(ValueError, match="rebuild policy"):
        SimulationConfig.relative(
            small_trace,
            proxy_frac=0.1,
            index_kind="bloom",
            index_update_policy=PeriodicUpdatePolicy(),
        )


def test_unknown_index_kind_rejected(small_trace):
    with pytest.raises(ValueError, match="index_kind"):
        SimulationConfig.relative(small_trace, proxy_frac=0.1, index_kind="oracle")


def test_bloom_sizing_uses_mean_of_actual_capacities(small_trace):
    """With heterogeneous ``browser_capacities`` the filters must be
    sized from the mean deployed capacity, not the (possibly wildly
    off) uniform ``browser_capacity`` fallback."""
    from repro.core.simulator import Simulator

    n = small_trace.n_clients
    capacities = tuple(5_000_000 if i % 2 == 0 else 15_000_000 for i in range(n))
    mean_capacity = sum(capacities) // n
    config = SimulationConfig(
        proxy_capacity=1_000_000,
        browser_capacity=1_000,  # deliberately far from the real mean
        browser_capacities=capacities,
        index_kind="bloom",
    )
    sim = Simulator(small_trace, Organization.BROWSERS_AWARE_PROXY, config)
    avg_doc = max(1, int(small_trace.sizes.mean()))
    assert sim.index.expected_docs == max(8, mean_capacity // avg_doc)
    # the buggy formula would have sized from browser_capacity:
    assert sim.index.expected_docs != max(8, config.browser_capacity // avg_doc)


def test_bloom_sizing_unchanged_for_uniform_capacity(small_trace):
    from repro.core.simulator import Simulator

    config = SimulationConfig(
        proxy_capacity=1_000_000, browser_capacity=2_000_000, index_kind="bloom"
    )
    sim = Simulator(small_trace, Organization.BROWSERS_AWARE_PROXY, config)
    avg_doc = max(1, int(small_trace.sizes.mean()))
    assert sim.index.expected_docs == max(8, config.browser_capacity // avg_doc)
