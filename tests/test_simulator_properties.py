"""Property-based tests on the simulation engine (hypothesis).

Random small traces through random configurations must preserve the
engine's conservation laws and mode-independent invariants.
"""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.core import HitLocation, Organization, SimulationConfig, simulate
from repro.traces.record import Trace
from repro.traces.stats import compute_stats


@st.composite
def traces(draw):
    n = draw(st.integers(1, 120))
    n_clients = draw(st.integers(1, 6))
    n_docs = draw(st.integers(1, 25))
    clients = draw(
        st.lists(st.integers(0, n_clients - 1), min_size=n, max_size=n)
    )
    # Dense-id contract: the engine rejects gaps in the client id space,
    # so remap the drawn ids to 0..k-1 (ascending, like Trace.renumbered).
    remap = {c: i for i, c in enumerate(sorted(set(clients)))}
    clients = [remap[c] for c in clients]
    docs = draw(st.lists(st.integers(0, n_docs - 1), min_size=n, max_size=n))
    base_sizes = draw(
        st.lists(st.integers(1, 2_000), min_size=n_docs, max_size=n_docs)
    )
    # versions bump monotonically per doc with small probability
    bumps = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    versions = []
    current: dict[int, int] = {}
    sizes = []
    for i in range(n):
        d = docs[i]
        v = current.get(d, 0)
        if bumps[i] and d in current:
            v += 1
        current[d] = v
        versions.append(v)
        sizes.append(base_sizes[d] + v)  # version changes the size
    return Trace(
        timestamps=np.arange(n, dtype=float),
        clients=np.array(clients),
        docs=np.array(docs),
        sizes=np.array(sizes),
        versions=np.array(versions),
        name="prop",
    )


CONFIGS = st.builds(
    SimulationConfig,
    proxy_capacity=st.integers(0, 5_000),
    browser_capacity=st.integers(0, 2_000),
    cache_remote_hits_at_proxy=st.booleans(),
    remote_hit_refreshes_holder=st.booleans(),
)


@settings(max_examples=60, deadline=None)
@given(trace=traces(), config=CONFIGS, org=st.sampled_from(list(Organization)))
def test_conservation_laws(trace, config, org):
    r = simulate(trace, org, config)
    # every request is classified exactly once
    total = sum(s.hits for s in r.by_location.values()) + r.by_location[
        HitLocation.ORIGIN
    ].misses
    assert total == len(trace)
    assert r.n_requests == len(trace)
    assert r.total_bytes == trace.total_bytes
    # ratios are proper fractions bounded by the infinite-cache maxima
    st_ = compute_stats(trace)
    assert 0.0 <= r.hit_ratio <= st_.max_hit_ratio + 1e-9
    assert 0.0 <= r.byte_hit_ratio <= st_.max_byte_hit_ratio + 1e-9
    # breakdown reconciles with the headline ratio
    assert abs(r.breakdown().total - r.hit_ratio) < 1e-9


@settings(max_examples=40, deadline=None)
@given(trace=traces(), config=CONFIGS)
def test_locations_match_organization_features(trace, config):
    for org in Organization:
        r = simulate(trace, org, config)
        f = org.features
        if not f.has_browsers:
            assert r.by_location[HitLocation.LOCAL_BROWSER].hits == 0
        if not f.has_proxy:
            assert r.by_location[HitLocation.PROXY].hits == 0
        if not f.has_index:
            assert r.by_location[HitLocation.REMOTE_BROWSER].hits == 0
        # core organizations never touch hierarchy locations
        assert r.by_location[HitLocation.SIBLING_PROXY].hits == 0
        assert r.by_location[HitLocation.PARENT_PROXY].hits == 0


@settings(max_examples=30, deadline=None)
@given(trace=traces(), config=CONFIGS)
def test_exact_index_never_false_hits(trace, config):
    r = simulate(trace, Organization.BROWSERS_AWARE_PROXY, config)
    assert r.index_false_hits == 0


@settings(max_examples=30, deadline=None)
@given(trace=traces(), config=CONFIGS)
def test_determinism(trace, config):
    a = simulate(trace, Organization.BROWSERS_AWARE_PROXY, config)
    b = simulate(trace, Organization.BROWSERS_AWARE_PROXY, config)
    assert a.hit_ratio == b.hit_ratio
    assert a.byte_hit_ratio == b.byte_hit_ratio
    assert a.by_location_remote_hits() == b.by_location_remote_hits()


@settings(max_examples=30, deadline=None)
@given(trace=traces(), capacity=st.integers(0, 5_000))
def test_zero_browser_baps_equals_proxy_only(trace, capacity):
    """With 0-byte browser caches, BAPS degenerates to proxy-cache-only."""
    config = SimulationConfig(proxy_capacity=capacity, browser_capacity=0)
    baps = simulate(trace, Organization.BROWSERS_AWARE_PROXY, config)
    proxy = simulate(trace, Organization.PROXY_ONLY, config)
    assert baps.hit_ratio == proxy.hit_ratio
    assert baps.by_location_remote_hits() == 0
