"""Experiment-module smoke tests on a small trace.

The full paper-scale experiments run in the benchmark harness; here we
exercise every experiment's logic and rendering quickly by pointing the
paper-trace loader at the small session trace.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ablation_index,
    ablation_replacement,
    fig2,
    fig3,
    fig4_6,
    fig7,
    fig8,
    hierarchy,
    index_space,
    memory_hit,
    overhead,
    security_overhead,
    staleness,
)


@pytest.fixture(autouse=True)
def patch_traces(monkeypatch, small_trace):
    """Redirect every experiment module's trace loader to small_trace."""
    modules = (
        fig2,
        fig3,
        fig4_6,
        fig7,
        fig8,
        hierarchy,
        index_space,
        memory_hit,
        overhead,
        security_overhead,
        staleness,
        ablation_index,
        ablation_replacement,
    )
    for mod in modules:
        monkeypatch.setattr(mod, "load_paper_trace", lambda name, cache=True: small_trace)
    # fig8's scaling driver re-filters clients itself, nothing to patch


def test_fig2_small():
    result = fig2.run(fractions=(0.05, 0.2))
    text = result.render()
    assert "browsers-aware-proxy-server" in text
    assert result.baps_dominates()


def test_fig3_small():
    result = fig3.run(fractions=(0.05, 0.2))
    assert result.remote_share_at(0.05) >= 0
    assert "remote-browsers" in result.render()


def test_fig4_6_small():
    result = fig4_6.run(5, fractions=(0.05, 0.2))
    assert result.figure == 5
    assert result.baps_wins_everywhere()
    assert "Figure 5" in result.render()
    with pytest.raises(ValueError):
        fig4_6.run(9)


def test_fig7_small():
    result = fig7.run(fractions=(0.05,))
    assert "limit case" in result.render()
    assert result.mean_hit_gain() >= 0


def test_fig8_small():
    result = fig8.run(trace_names=("small",), client_fractions=(0.5, 1.0))
    assert "small" in result.results
    assert "client scaling" in result.render()


def test_overhead_small():
    result = overhead.run(trace_names=("small",))
    assert 0 <= result.max_communication_fraction() < 1
    assert "comm/total" in result.render()


def test_memory_hit_small():
    result = memory_hit.run(baps_frac=0.05, plb_frac=0.1)
    assert len(result.variants) == 2
    assert "memory byte hit ratio" in result.render()
    with pytest.raises(KeyError):
        result.variant("nonexistent")


def test_index_space_small():
    result = index_space.run()
    assert result.measured_peak_entries > 0
    assert "browser index space" in result.render()


def test_staleness_small():
    result = staleness.run(thresholds=(0.05, 0.25))
    assert result.degradation(0.05) < 0.05
    assert "delay threshold" in result.render()


def test_security_small():
    result = security_overhead.run()
    assert result.live_transfer_seconds > 0
    assert result.crypto_fraction_of_total < 0.05
    assert "security overhead" in result.render()


def test_ablation_replacement_small():
    result = ablation_replacement.run(policies=("lru", "fifo"))
    assert set(result.results) == {"lru", "fifo"}
    assert result.results["lru"].hit_ratio >= result.results["fifo"].hit_ratio - 0.01
    assert "replacement policy" in result.render()


def test_ablation_index_small():
    result = ablation_index.run(n_probe=2_000)
    assert result.bloom_false_positive_rate < 0.05
    assert result.exact.hit_ratio >= result.periodic.hit_ratio - 0.01
    assert "index maintenance" in result.render()


def test_hierarchy_small():
    result = hierarchy.run(n_leaves=2)
    assert len(result.results) == 5
    assert "cooperative proxies" in result.render()


def test_availability_small(monkeypatch, small_trace):
    from repro.experiments import availability

    monkeypatch.setattr(
        availability, "load_paper_trace", lambda name, cache=True: small_trace
    )
    result = availability.run(availabilities=(1.0, 0.5), max_holder_retries=1)
    text = result.render()
    assert "holder availability" in text
    assert result.gain(1.0) >= result.gain(0.5)


def test_churn_sweep_small(monkeypatch, small_trace):
    from repro.experiments import availability

    monkeypatch.setattr(
        availability, "load_paper_trace", lambda name, cache=True: small_trace
    )
    result = availability.run_churn(
        session_lengths=(600.0, 120.0), retry_budgets=(0, 2)
    )
    text = result.render()
    assert "failover under session churn" in text
    assert "HR r=0" in text and "HR r=2" in text
    for mean_on in (600.0, 120.0):
        # a retry budget never hurts: same churn schedule, more replicas
        assert (
            result.cell(mean_on, 2).hit_ratio
            >= result.cell(mean_on, 0).hit_ratio
        )
        assert 0.0 <= result.recovered_fraction(mean_on, 2)
    # churn can only lose hits relative to the always-on anchor
    assert result.always_on.hit_ratio >= result.cell(120.0, 0).hit_ratio


def test_churn_sweep_validates_availability(monkeypatch, small_trace):
    from repro.experiments import availability

    monkeypatch.setattr(
        availability, "load_paper_trace", lambda name, cache=True: small_trace
    )
    with pytest.raises(ValueError, match="availability"):
        availability.run_churn(availability=1.0)


def test_runner_forwards_failure_model_kwargs(monkeypatch, small_trace):
    from repro.experiments import availability, runner

    monkeypatch.setattr(
        availability, "load_paper_trace", lambda name, cache=True: small_trace
    )
    result = runner.run_experiment(
        "availability",
        max_holder_retries=1,
        corruption_rate=0.1,
    )
    assert result.by_availability  # ran with the forwarded knobs
    # unknown-to-runner extras are dropped for experiments that don't
    # accept them rather than raising
    table = runner.run_experiment("table1", max_holder_retries=3)
    assert table is not None


def test_recovery_sweep_small(monkeypatch, small_trace):
    from repro.experiments import recovery

    monkeypatch.setattr(
        recovery, "load_paper_trace", lambda name, cache=True: small_trace
    )
    duration = float(small_trace.timestamps.max())
    result = recovery.run(
        crash_counts=(2,),
        checkpoint_intervals=(duration / 24,),
        reannounce_rate=0.02,
    )
    text = result.render()
    assert "proxy crash recovery" in text
    assert "no checkpoint" in text
    floor = result.no_checkpoint[2]
    cell = result.cell(2, duration / 24)
    assert floor.proxy_crashes == cell.proxy_crashes == 2
    assert cell.checkpoint_bytes_written > 0
    # checkpointing sits between the cold-restart floor and always-up
    assert floor.hit_ratio <= cell.hit_ratio <= result.always_up.hit_ratio
    assert result.has_strict_cell()
    assert 0.0 <= result.recovered_fraction(2, duration / 24) <= 1.0
