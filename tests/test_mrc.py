"""Property and differential tests for the one-pass MRC engine.

Three satellite properties from the issue — the every-size curve is
monotone non-decreasing in cache size, the spatial sampler is
deterministic per ``(seed, rate)`` and chunk-size-invariant when fed
from a :class:`~repro.traces.streaming.TraceStream`, and
``sample_rate=1.0`` is bit-identical to the unsampled pass — plus the
strongest check available: on randomized traces and randomized
capacity grids, the one-pass predictions for the pure-LRU
organizations must be **bit-exact** against a full replay (this is
what exercises the oversize-refusal corrections and the in-place-
refresh barriers with adversarial sizes).

The example budget follows ``HYPOTHESIS_PROFILE``: 25 examples per
test by default, 200 under the ``ci-nightly`` profile (the same knob
as ``tests/test_differential.py``).
"""

from __future__ import annotations

import os

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.analysis.mrc import (
    MRC_EXACT_ORGANIZATIONS,
    CapacityGrid,
    capacity_grid,
    compute_mrc,
)
from repro.core.config import SimulationConfig
from repro.core.policies import Organization
from repro.core.simulator import simulate
from repro.core.sweep import PAPER_SIZE_FRACTIONS
from repro.traces.record import Trace
from repro.traces.sampling import (
    SAMPLE_ERROR_BOUNDS,
    SpatialSampler,
    build_sample_report,
    sample_trace,
)
from repro.traces.streaming import stream_trace
from repro.traces.synthetic import SyntheticTraceConfig

settings.register_profile("default", max_examples=25, deadline=None)
settings.register_profile(
    "ci-nightly",
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@st.composite
def traces(draw):
    """Small traces with version bumps that change sizes, including
    documents larger than the smallest grid capacities (so refusal and
    oversized-refresh paths are exercised, not just clean LRU)."""
    n = draw(st.integers(10, 120))
    n_clients = draw(st.integers(2, 5))
    n_docs = draw(st.integers(2, 25))
    clients = draw(st.lists(st.integers(0, n_clients - 1), min_size=n, max_size=n))
    remap = {c: i for i, c in enumerate(sorted(set(clients)))}
    clients = [remap[c] for c in clients]
    docs = draw(st.lists(st.integers(0, n_docs - 1), min_size=n, max_size=n))
    base_sizes = draw(
        st.lists(st.integers(1, 3_000), min_size=n_docs, max_size=n_docs)
    )
    bumps = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    versions = []
    current: dict[int, int] = {}
    sizes = []
    for i in range(n):
        d = docs[i]
        v = current.get(d, 0)
        if bumps[i] and d in current:
            v += 1
        current[d] = v
        versions.append(v)
        sizes.append(base_sizes[d] + v)
    return Trace(
        timestamps=np.arange(n, dtype=np.float64),
        clients=np.array(clients),
        docs=np.array(docs),
        sizes=np.array(sizes),
        versions=np.array(versions),
        name="mrc-prop",
    )


@st.composite
def grids(draw):
    """Ascending capacity grids small enough to force evictions."""
    k = draw(st.integers(1, 4))
    proxy = sorted(draw(st.lists(st.integers(1, 8_000), min_size=k, max_size=k)))
    browser = sorted(draw(st.lists(st.integers(1, 3_000), min_size=k, max_size=k)))
    fractions = tuple((i + 1) / 10 for i in range(k))
    return CapacityGrid(fractions, tuple(proxy), tuple(browser))


# -- exactness: the strongest property ---------------------------------


@given(trace=traces(), grid=grids())
def test_pure_lru_organizations_bit_exact_vs_replay(trace, grid):
    analysis = compute_mrc(trace, grid, organizations=tuple(MRC_EXACT_ORGANIZATIONS))
    for org in MRC_EXACT_ORGANIZATIONS:
        for i, frac in enumerate(grid.fractions):
            point = analysis.predict(org, frac)
            replay = simulate(
                trace,
                org,
                SimulationConfig(
                    proxy_capacity=grid.proxy_capacities[i],
                    browser_capacity=grid.browser_capacities[i],
                ),
            )
            assert point.exact
            assert point.hit_ratio == pytest.approx(replay.hit_ratio, abs=1e-12)
            assert point.byte_hit_ratio == pytest.approx(
                replay.byte_hit_ratio, abs=1e-12
            )


# -- monotonicity ------------------------------------------------------


@given(trace=traces(), capacities=st.lists(st.integers(0, 10_000), min_size=2, max_size=30))
def test_every_size_curve_monotone_non_decreasing(trace, capacities):
    grid = CapacityGrid((0.1,), (1_000,), (500,))
    analysis = compute_mrc(trace, grid)
    for curve in (analysis.proxy_curve, analysis.browser_curve):
        assert curve is not None
        points = curve.curve(sorted(capacities))
        for (_, h0, b0), (_, h1, b1) in zip(points, points[1:]):
            assert h1 >= h0
            assert b1 >= b0


# -- sampler determinism and identity ----------------------------------


@given(
    rate=st.floats(0.001, 1.0),
    seed=st.integers(0, 2**32),
    docs=st.lists(st.integers(0, 2**40), min_size=1, max_size=200),
)
def test_sampler_deterministic_per_seed_and_rate(rate, seed, docs):
    a = SpatialSampler(rate, seed=seed)
    b = SpatialSampler(rate, seed=seed)
    arr = np.array(docs, dtype=np.int64)
    mask_a = a.mask(arr)
    assert np.array_equal(mask_a, b.mask(arr))
    # scalar and vectorised decisions agree element-wise
    assert [a.keep(d) for d in docs] == mask_a.tolist()
    # decisions are per-document: duplicates always agree
    decisions = dict(zip(docs, mask_a.tolist()))
    assert all(decisions[d] == kept for d, kept in zip(docs, mask_a.tolist()))


@given(trace=traces(), seed=st.integers(0, 2**16))
def test_sample_rate_one_bit_identical_to_unsampled(trace, seed):
    grid = CapacityGrid((0.1, 0.2), (400, 2_000), (150, 900))
    full = compute_mrc(trace, grid)
    one = compute_mrc(trace, grid, sample_rate=1.0, sample_seed=seed)
    assert full.counts == one.counts
    assert full.hit_bytes == one.hit_bytes
    assert full.n_requests == one.n_requests
    assert full.total_bytes == one.total_bytes
    for a, b in ((full.proxy_curve, one.proxy_curve), (full.browser_curve, one.browser_curve)):
        assert np.array_equal(a.required, b.required)
        assert np.array_equal(a.cum_hits, b.cum_hits)
        assert np.array_equal(a.cum_hit_bytes, b.cum_hit_bytes)


@given(
    chunks=st.tuples(st.integers(1, 701), st.integers(1, 701)),
    rate=st.sampled_from((0.25, 0.5, 0.9)),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=10, deadline=None)
def test_sampled_pass_chunk_size_invariant_from_stream(chunks, rate, seed):
    cfg = SyntheticTraceConfig(n_requests=700, n_clients=5, name="chunk-inv")
    grid_source = stream_trace(cfg, seed=1, chunk_rows=256)
    grid = capacity_grid(grid_source, (0.01, 0.1))
    results = [
        compute_mrc(
            stream_trace(cfg, seed=1, chunk_rows=chunk),
            grid,
            sample_rate=rate,
            sample_seed=seed,
        )
        for chunk in chunks
    ]
    a, b = results
    assert a.n_requests == b.n_requests
    assert a.counts == b.counts
    assert a.hit_bytes == b.hit_bytes


# -- non-hypothesis spot checks ----------------------------------------


def test_sample_trace_keeps_whole_documents(small_trace):
    sampled = sample_trace(small_trace, 0.3, seed=5)
    kept = set(sampled.docs.tolist())
    dropped = set(small_trace.docs.tolist()) - kept
    sampler = SpatialSampler(0.3, seed=5)
    assert all(sampler.keep(d) for d in kept)
    assert not any(sampler.keep(d) for d in dropped)
    # every request for a kept document survives
    expected = sum(1 for d in small_trace.docs.tolist() if d in kept)
    assert len(sampled) == expected


def test_sampler_rejects_bad_rates():
    with pytest.raises(ValueError):
        SpatialSampler(0.0)
    with pytest.raises(ValueError):
        SpatialSampler(1.2)
    with pytest.raises(ValueError):
        SpatialSampler(1e-9)  # quantises to an empty sample at MOD=2**24
    with pytest.raises(ValueError):
        compute_mrc(None, CapacityGrid((0.1,), (1,), (1,)), sample_rate=0.0)


def test_sampler_effective_rate_quantisation():
    sampler = SpatialSampler(0.05, seed=1)
    assert abs(sampler.effective_rate - 0.05) < 6e-8
    assert SpatialSampler(1.0).effective_rate == 1.0


def test_build_sample_report_quantifies_estimator(small_trace):
    grid = capacity_grid(small_trace, (0.05, 0.2))
    full = compute_mrc(small_trace, grid)
    report = build_sample_report(small_trace, grid, 0.5, seed=3, full_mrc=full)
    assert report.trace_name == small_trace.name
    assert report.sample_rate == 0.5
    assert 0 < report.n_requests_sampled < report.n_requests_full
    assert len(report.rows) == len(full.organizations) * len(grid.fractions)
    for row in report.rows:
        assert row.hit_error == pytest.approx(
            row.sampled_hit_ratio - row.full_hit_ratio
        )
        assert row.byte_hit_error == pytest.approx(
            row.sampled_byte_hit_ratio - row.full_byte_hit_ratio
        )
    worst = report.worst()
    assert abs(worst.hit_error) == report.max_abs_hit_error
    assert "max |hit-ratio error|" in report.summary()
    # full_mrc precomputation is an optimisation, not a semantic change
    recomputed = build_sample_report(small_trace, grid, 0.5, seed=3)
    assert recomputed == report
    # the documented per-rate bounds exist and are sane
    assert set(SAMPLE_ERROR_BOUNDS) >= {0.01, 0.05, 0.10}
    assert all(0 < bound < 1 for bound in SAMPLE_ERROR_BOUNDS.values())


def test_predict_rejects_unanalysed_organization(small_trace):
    grid = capacity_grid(small_trace, (0.05,))
    analysis = compute_mrc(
        small_trace, grid, organizations=(Organization.PROXY_ONLY,)
    )
    with pytest.raises(KeyError):
        analysis.predict(Organization.BROWSERS_AWARE_PROXY, 0.05)
    with pytest.raises(KeyError):
        analysis.predict(Organization.PROXY_ONLY, 0.42)


def test_mrc_sweep_small_trace_exact_orgs(small_trace):
    """End-to-end through run_policy_sweep: the mrc=True fast path
    reproduces replays bit-exactly for the pure-LRU organizations on
    the shared fixture trace at the paper's grid."""
    from repro.core.sweep import run_policy_sweep

    mrc_sweep = run_policy_sweep(
        small_trace, organizations=tuple(MRC_EXACT_ORGANIZATIONS), mrc=True
    )
    replay_sweep = run_policy_sweep(
        small_trace, organizations=tuple(MRC_EXACT_ORGANIZATIONS)
    )
    assert mrc_sweep.timing.mrc_points == len(MRC_EXACT_ORGANIZATIONS) * len(
        PAPER_SIZE_FRACTIONS
    )
    assert mrc_sweep.timing.replays_avoided == mrc_sweep.timing.mrc_points - 1
    assert mrc_sweep.timing.full_replays == 0
    assert replay_sweep.timing.mrc_points == 0
    for org in MRC_EXACT_ORGANIZATIONS:
        for frac in PAPER_SIZE_FRACTIONS:
            got = mrc_sweep.get(org, frac)
            want = replay_sweep.get(org, frac)
            assert got.hit_ratio == pytest.approx(want.hit_ratio, abs=1e-12)
            assert got.byte_hit_ratio == pytest.approx(
                want.byte_hit_ratio, abs=1e-12
            )
